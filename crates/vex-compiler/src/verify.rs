//! Independent schedule verification and a sequential IR interpreter.
//!
//! * [`verify_schedule`] re-checks a schedule against freshly rebuilt
//!   dependences and resource tables — run on every compile, and used by the
//!   property tests as an oracle.
//! * [`interpret`] executes a kernel *sequentially* at the IR level. It is
//!   the golden functional model: a compiled program executed on any
//!   simulator configuration must leave memory in exactly this state. This
//!   is how the test suite proves that split-issue (and the compiler) never
//!   break the paper's execution semantics.

use crate::cluster::LegalKernel;
use crate::ir::{BinKind, CmpKind, IrOp, Kernel, MemWidth, Terminator, Val};
use crate::schedule::{build_deps, requirements, result_latency, term_emits_op, KernelSchedule};
use crate::CompileError;
use std::collections::HashMap;
use vex_isa::{FuKind, MachineConfig};
use vex_mem::Memory;

/// Verifies latencies, resource bounds and terminator placement of a
/// schedule. Returns a descriptive error naming the first violation.
pub fn verify_schedule(
    lk: &LegalKernel,
    sched: &KernelSchedule,
    m: &MachineConfig,
) -> Result<(), CompileError> {
    for (bid, block) in lk.blocks.iter().enumerate() {
        let bs = &sched.blocks[bid];
        let deps = build_deps(bid, block, m);

        // Dependence latencies.
        for (i, preds) in deps.preds.iter().enumerate() {
            for e in preds {
                if bs.cycle[i] < bs.cycle[e.pred] + e.lat {
                    return Err(CompileError::BadSchedule(format!(
                        "block {bid}: op {i} at cycle {} violates edge from op {} (+{})",
                        bs.cycle[i], e.pred, e.lat
                    )));
                }
            }
        }

        let emits = term_emits_op(bid, &block.term);
        if emits {
            for e in &deps.term_preds {
                if bs.term_cycle < bs.cycle[e.pred] + e.lat {
                    return Err(CompileError::BadSchedule(format!(
                        "block {bid}: terminator at cycle {} violates edge from op {} (+{})",
                        bs.term_cycle, e.pred, e.lat
                    )));
                }
            }
            if bs.len != bs.term_cycle + 1 {
                return Err(CompileError::BadSchedule(format!(
                    "block {bid}: terminator not in final instruction"
                )));
            }
            for (i, &c) in bs.cycle.iter().enumerate() {
                if c > bs.term_cycle {
                    return Err(CompileError::BadSchedule(format!(
                        "block {bid}: op {i} scheduled after the terminator"
                    )));
                }
            }
        }
        // Drain rule: every result complete by the cycle after block end.
        for (i, lop) in block.ops.iter().enumerate() {
            if bs.cycle[i] + result_latency(&lop.op, m) > bs.len {
                return Err(CompileError::BadSchedule(format!(
                    "block {bid}: op {i} result not drained by block end"
                )));
            }
        }

        // Resources.
        let mut used: HashMap<(u32, u8), (u8, [u8; 6])> = HashMap::new();
        let fu_idx = |k: FuKind| -> usize {
            match k {
                FuKind::Alu => 0,
                FuKind::Mul => 1,
                FuKind::Mem => 2,
                FuKind::Br => 3,
                FuKind::Send => 4,
                FuKind::Recv => 5,
            }
        };
        let mut charge = |cycle: u32, c: u8, k: FuKind| -> Result<(), CompileError> {
            let entry = used.entry((cycle, c)).or_insert((0, [0; 6]));
            entry.0 += 1;
            entry.1[fu_idx(k)] += 1;
            if entry.0 > m.cluster.slots || entry.1[fu_idx(k)] > m.cluster.count(k) {
                return Err(CompileError::BadSchedule(format!(
                    "block {bid}: cycle {cycle} cluster {c} over-subscribed ({k:?})"
                )));
            }
            Ok(())
        };
        for (i, lop) in block.ops.iter().enumerate() {
            for (c, k) in requirements(lop, lk) {
                charge(bs.cycle[i], c, k)?;
            }
        }
        if emits {
            charge(bs.term_cycle, block.term_cluster, FuKind::Br)?;
        }
    }
    Ok(())
}

/// Final state of a sequential IR execution.
#[derive(Clone, Debug)]
pub struct InterpResult {
    /// Final values of the author-visible virtual registers.
    pub regs: Vec<u32>,
    /// Final memory image.
    pub mem: Memory,
    /// Whether the kernel reached `halt` within the fuel budget.
    pub halted: bool,
    /// IR operations executed.
    pub ops_executed: u64,
}

/// Evaluates a two-source operation (shared with nothing: the simulator has
/// its own ISA-level evaluator, and tests cross-check the two).
pub fn eval_bin(kind: BinKind, a: u32, b: u32) -> u32 {
    match kind {
        BinKind::Add => a.wrapping_add(b),
        BinKind::Sub => a.wrapping_sub(b),
        BinKind::And => a & b,
        BinKind::Or => a | b,
        BinKind::Xor => a ^ b,
        BinKind::Andc => a & !b,
        BinKind::Shl => a.wrapping_shl(b & 31),
        BinKind::Shr => a.wrapping_shr(b & 31),
        BinKind::Sra => (a as i32).wrapping_shr(b & 31) as u32,
        BinKind::Min => (a as i32).min(b as i32) as u32,
        BinKind::Max => (a as i32).max(b as i32) as u32,
        BinKind::Minu => a.min(b),
        BinKind::Maxu => a.max(b),
        BinKind::Mull => a.wrapping_mul(b),
        BinKind::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
    }
}

/// Evaluates a comparison.
pub fn eval_cmp(kind: CmpKind, a: u32, b: u32) -> bool {
    match kind {
        CmpKind::Eq => a == b,
        CmpKind::Ne => a != b,
        CmpKind::Lt => (a as i32) < (b as i32),
        CmpKind::Le => (a as i32) <= (b as i32),
        CmpKind::Gt => (a as i32) > (b as i32),
        CmpKind::Ge => (a as i32) >= (b as i32),
        CmpKind::Ltu => a < b,
        CmpKind::Geu => a >= b,
    }
}

/// Runs a kernel sequentially for at most `max_ops` IR operations.
pub fn interpret(k: &Kernel, max_ops: u64) -> InterpResult {
    let mut regs = vec![0u32; k.vreg_count as usize];
    let mut bregs = vec![false; k.vbreg_count as usize];
    let mut mem = Memory::new();
    for seg in &k.data {
        mem.write_bytes(seg.base, &seg.bytes);
    }

    let mut ops_executed = 0u64;
    let mut block = 0usize;
    loop {
        let b = &k.blocks[block];
        for op in &b.ops {
            if ops_executed >= max_ops {
                return InterpResult {
                    regs,
                    mem,
                    halted: false,
                    ops_executed,
                };
            }
            ops_executed += 1;
            let val = |v: Val, regs: &[u32]| -> u32 {
                match v {
                    Val::V(r) => regs[r.0 as usize],
                    Val::Imm(i) => i as u32,
                }
            };
            match *op {
                IrOp::Bin { kind, dst, a, b } => {
                    regs[dst.0 as usize] = eval_bin(kind, val(a, &regs), val(b, &regs));
                }
                IrOp::Mov { dst, src } => regs[dst.0 as usize] = val(src, &regs),
                IrOp::Load {
                    w, dst, base, off, ..
                } => {
                    let addr = val(base, &regs).wrapping_add(off as u32);
                    regs[dst.0 as usize] = match w {
                        MemWidth::B => mem.read_u8(addr) as i8 as i32 as u32,
                        MemWidth::Bu => mem.read_u8(addr) as u32,
                        MemWidth::H => mem.read_u16(addr) as i16 as i32 as u32,
                        MemWidth::Hu => mem.read_u16(addr) as u32,
                        MemWidth::W => mem.read_u32(addr),
                    };
                }
                IrOp::Store {
                    w,
                    value,
                    base,
                    off,
                    ..
                } => {
                    let addr = val(base, &regs).wrapping_add(off as u32);
                    let v = val(value, &regs);
                    match w {
                        MemWidth::B | MemWidth::Bu => mem.write_u8(addr, v as u8),
                        MemWidth::H | MemWidth::Hu => mem.write_u16(addr, v as u16),
                        MemWidth::W => mem.write_u32(addr, v),
                    }
                }
                IrOp::CmpR { kind, dst, a, b } => {
                    regs[dst.0 as usize] = eval_cmp(kind, val(a, &regs), val(b, &regs)) as u32;
                }
                IrOp::CmpB { kind, dst, a, b } => {
                    bregs[dst.0 as usize] = eval_cmp(kind, val(a, &regs), val(b, &regs));
                }
                IrOp::Select { dst, cond, a, b } => {
                    regs[dst.0 as usize] = if bregs[cond.0 as usize] {
                        val(a, &regs)
                    } else {
                        val(b, &regs)
                    };
                }
                IrOp::Xfer { .. } => unreachable!("interpreting a pre-legalised kernel"),
            }
        }
        match b.term {
            Terminator::Jump(t) => block = t,
            Terminator::CondBr {
                cond,
                negate,
                taken,
                fall,
            } => {
                block = if bregs[cond.0 as usize] ^ negate {
                    taken
                } else {
                    fall
                };
            }
            Terminator::Halt => {
                return InterpResult {
                    regs,
                    mem,
                    halted: true,
                    ops_executed,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::KernelBuilder;

    #[test]
    fn interpreter_runs_a_loop() {
        let mut k = KernelBuilder::new("sum");
        let body = k.new_block();
        let exit = k.new_block();
        let i = k.vreg();
        let acc = k.vreg();
        k.movi(i, 0);
        k.movi(acc, 0);
        k.jump(body);
        k.switch_to(body);
        k.add(acc, acc, i);
        k.add(i, i, Val::Imm(1));
        k.cond_br(CmpKind::Lt, i, Val::Imm(10), body, exit);
        k.switch_to(exit);
        k.store(MemWidth::W, acc, Val::Imm(0x100), 0, 1);
        k.halt();
        let kernel = k.finish();
        let r = interpret(&kernel, 1_000_000);
        assert!(r.halted);
        assert_eq!(r.mem.read_u32(0x100), 45);
    }

    #[test]
    fn fuel_bound_stops_runaway() {
        let mut k = KernelBuilder::new("inf");
        let b = k.new_block();
        let x = k.vreg();
        k.movi(x, 0);
        k.jump(b);
        k.switch_to(b);
        k.add(x, x, Val::Imm(1));
        k.jump(b);
        let kernel = k.finish();
        let r = interpret(&kernel, 100);
        assert!(!r.halted);
        assert_eq!(r.ops_executed, 100);
    }

    #[test]
    fn eval_bin_semantics() {
        assert_eq!(eval_bin(BinKind::Sra, 0xffff_fff0, 2), 0xffff_fffc);
        assert_eq!(eval_bin(BinKind::Shr, 0xffff_fff0, 2), 0x3fff_fffc);
        assert_eq!(eval_bin(BinKind::Mulh, 0x8000_0000, 2), 0xffff_ffff);
        assert_eq!(eval_bin(BinKind::Min, 0xffff_ffff, 1), 0xffff_ffff); // -1 < 1
        assert_eq!(eval_bin(BinKind::Minu, 0xffff_ffff, 1), 1);
        assert_eq!(eval_bin(BinKind::Andc, 0b1100, 0b1010), 0b0100);
    }

    #[test]
    fn eval_cmp_semantics() {
        assert!(eval_cmp(CmpKind::Lt, 0xffff_ffff, 0)); // signed -1 < 0
        assert!(!eval_cmp(CmpKind::Ltu, 0xffff_ffff, 0));
        assert!(eval_cmp(CmpKind::Geu, 0xffff_ffff, 0));
        assert!(eval_cmp(CmpKind::Ne, 1, 2));
    }
}
