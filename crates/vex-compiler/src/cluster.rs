//! Cluster assignment (Bottom-Up-Greedy flavoured) and inter-cluster
//! transfer legalisation.
//!
//! The paper's compiler uses Ellis' Bottom-Up-Greedy (BUG) algorithm to map
//! values to clusters, balancing functional-unit load against the cost of
//! inter-cluster copies. We implement a deterministic greedy variant with
//! the same ingredients:
//!
//! * author pins (`KernelBuilder::vreg_on`) are honoured absolutely — this
//!   is how workloads express data placement, standing in for the array
//!   partitioning a real BUG run derives from the program graph;
//! * unpinned values are placed by maximising operand affinity (each operand
//!   already resident in a cluster votes for it) minus a load penalty that
//!   tracks how many ALU/MUL/MEM operations each cluster has accumulated, so
//!   independent work spreads across clusters;
//! * every def of a value must execute in the value's cluster, so
//!   redefinitions inherit the original placement.
//!
//! After assignment, [`legalize_xfers`] rewrites the kernel so that every
//! operand is cluster-local, inserting [`IrOp::Xfer`] copies (lowered later
//! to paired `send`/`recv`) into *shadow* registers, one per (value,
//! consuming cluster), reused across blocks and invalidated when the source
//! value is redefined.

use crate::ir::{Block, IrOp, Kernel, Terminator, VReg, Val};
use std::collections::HashMap;
use vex_isa::{ClusterId, DataSegment, MachineConfig};

/// Result of cluster assignment.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// Cluster of each GPR-class vreg.
    pub vreg: Vec<ClusterId>,
    /// Cluster of each branch-class vreg.
    pub vbreg: Vec<ClusterId>,
}

/// Per-cluster load accumulators used by the greedy placement.
struct Load {
    total: Vec<f32>,
    mul: Vec<f32>,
    mem: Vec<f32>,
}

impl Load {
    fn new(n: usize) -> Self {
        Load {
            total: vec![0.0; n],
            mul: vec![0.0; n],
            mem: vec![0.0; n],
        }
    }

    /// Penalty for adding `op` to cluster `c`. Like BUG, locality dominates:
    /// the penalty is the *imbalance* relative to the least-loaded cluster
    /// (saturating), so long dependence chains stay where their operands
    /// are and only genuinely independent work spreads out.
    fn penalty(&self, c: usize, op: &IrOp) -> f32 {
        let min_total = self.total.iter().copied().fold(f32::INFINITY, f32::min);
        let mut p = ((self.total[c] - min_total) * 0.55).min(7.0);
        match op {
            IrOp::Bin { kind, .. } if kind.is_mul() => {
                let min_mul = self.mul.iter().copied().fold(f32::INFINITY, f32::min);
                p += ((self.mul[c] - min_mul) * 0.8).min(4.0);
            }
            IrOp::Load { .. } | IrOp::Store { .. } => {
                let min_mem = self.mem.iter().copied().fold(f32::INFINITY, f32::min);
                p += ((self.mem[c] - min_mem) * 1.5).min(6.0);
            }
            _ => {}
        }
        p
    }

    fn charge(&mut self, c: usize, op: &IrOp) {
        self.total[c] += 1.0;
        match op {
            IrOp::Bin { kind, .. } if kind.is_mul() => self.mul[c] += 1.0,
            IrOp::Load { .. } | IrOp::Store { .. } => self.mem[c] += 1.0,
            _ => {}
        }
    }
}

/// Assigns every virtual register (GPR and branch class) to a cluster.
pub fn assign_clusters(k: &Kernel, m: &MachineConfig) -> Assignment {
    let n = m.n_clusters as usize;
    let mut vreg: Vec<Option<ClusterId>> = k.pins.clone();
    vreg.resize(k.vreg_count as usize, None);
    let mut vbreg: Vec<Option<ClusterId>> = vec![None; k.vbreg_count as usize];
    let mut load = Load::new(n);

    // Affinity of an op's operands for each cluster. Weighted heavily:
    // an inter-cluster copy costs a send+recv pair and a cycle of latency,
    // so locality beats load balance unless the operands are spread out.
    let affinity = |op: &IrOp, vreg: &[Option<ClusterId>], scores: &mut [f32]| {
        scores.iter_mut().for_each(|s| *s = 0.0);
        for v in op.src_vregs() {
            if let Some(c) = vreg[v.0 as usize] {
                scores[c as usize] += 5.0;
            }
        }
    };

    let mut scores = vec![0.0f32; n];
    for block in &k.blocks {
        for op in &block.ops {
            // Where does this op execute?
            let exec_cluster: ClusterId = match op {
                IrOp::Select { cond, dst, .. } => {
                    // A select reads its branch register locally: it runs in
                    // the condition's cluster (assigned by its CmpB).
                    let c = vbreg[cond.0 as usize].unwrap_or(0);
                    if vreg[dst.0 as usize].is_none() {
                        vreg[dst.0 as usize] = Some(c);
                    }
                    c
                }
                _ => {
                    if let Some(dst) = op.dst_vreg() {
                        if let Some(c) = vreg[dst.0 as usize] {
                            c // redefinition: the value's home wins
                        } else {
                            affinity(op, &vreg, &mut scores);
                            let c = pick(&scores, &load, op);
                            vreg[dst.0 as usize] = Some(c);
                            c
                        }
                    } else {
                        // Store / CmpB: execute near their operands.
                        affinity(op, &vreg, &mut scores);
                        let c = pick(&scores, &load, op);
                        if let Some(b) = op.dst_vbreg() {
                            vbreg[b.0 as usize] = Some(c);
                        }
                        c
                    }
                }
            };
            load.charge(exec_cluster as usize, op);
        }
    }

    Assignment {
        vreg: vreg.into_iter().map(|c| c.unwrap_or(0)).collect(),
        vbreg: vbreg.into_iter().map(|c| c.unwrap_or(0)).collect(),
    }
}

fn pick(scores: &[f32], load: &Load, op: &IrOp) -> ClusterId {
    let mut best = 0usize;
    let mut best_score = f32::NEG_INFINITY;
    for (c, &score) in scores.iter().enumerate() {
        let s = score - load.penalty(c, op);
        if s > best_score + 1e-6 {
            best_score = s;
            best = c;
        }
    }
    best as ClusterId
}

/// An IR operation annotated with its execution cluster.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LOp {
    /// The operation (operands already cluster-local).
    pub op: IrOp,
    /// Cluster it executes in. For [`IrOp::Xfer`] this is the *destination*
    /// cluster; the source side is implied by the source register.
    pub cluster: ClusterId,
}

/// A legalised block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LBlock {
    /// Operations in (pre-scheduling) program order.
    pub ops: Vec<LOp>,
    /// Terminator (unchanged from the kernel).
    pub term: Terminator,
    /// Cluster whose branch unit executes the terminator op, if one is
    /// emitted.
    pub term_cluster: ClusterId,
}

/// A kernel whose operands are all cluster-local.
#[derive(Clone, Debug)]
pub struct LegalKernel {
    /// Name (propagated to the program).
    pub name: String,
    /// Legalised blocks, same ids as the source kernel.
    pub blocks: Vec<LBlock>,
    /// Cluster of every vreg, including compiler-created shadows
    /// (`len >= kernel.vreg_count`).
    pub vreg_cluster: Vec<ClusterId>,
    /// Cluster of every branch-class vreg.
    pub vbreg_cluster: Vec<ClusterId>,
    /// Initial data image.
    pub data: Vec<DataSegment>,
}

impl LegalKernel {
    /// Execution cluster of an already-legalised op.
    pub fn op_cluster(&self, lop: &LOp) -> ClusterId {
        lop.cluster
    }

    /// Cluster of the *source* side of an Xfer.
    pub fn xfer_src_cluster(&self, lop: &LOp) -> Option<ClusterId> {
        match lop.op {
            IrOp::Xfer { src, .. } => Some(self.vreg_cluster[src.0 as usize]),
            _ => None,
        }
    }
}

/// Rewrites the kernel so every operand is local to its op's cluster,
/// inserting inter-cluster [`IrOp::Xfer`] copies.
pub fn legalize_xfers(k: &Kernel, a: &Assignment, _m: &MachineConfig) -> LegalKernel {
    let mut vreg_cluster = a.vreg.clone();
    // Global shadow registry: (source vreg, consuming cluster) -> shadow.
    let mut shadows: HashMap<(VReg, ClusterId), VReg> = HashMap::new();
    let mut blocks = Vec::with_capacity(k.blocks.len());

    for block in &k.blocks {
        blocks.push(legalize_block(block, a, &mut vreg_cluster, &mut shadows));
    }

    LegalKernel {
        name: k.name.clone(),
        blocks,
        vreg_cluster,
        vbreg_cluster: a.vbreg.clone(),
        data: k.data.clone(),
    }
}

fn legalize_block(
    block: &Block,
    a: &Assignment,
    vreg_cluster: &mut Vec<ClusterId>,
    shadows: &mut HashMap<(VReg, ClusterId), VReg>,
) -> LBlock {
    // Shadows valid in this block (source not redefined since the copy).
    let mut valid: HashMap<(VReg, ClusterId), VReg> = HashMap::new();
    let mut out: Vec<LOp> = Vec::with_capacity(block.ops.len());

    let mut localize = |v: VReg,
                        to: ClusterId,
                        out: &mut Vec<LOp>,
                        valid: &mut HashMap<(VReg, ClusterId), VReg>,
                        vreg_cluster: &mut Vec<ClusterId>|
     -> VReg {
        let home = vreg_cluster[v.0 as usize];
        if home == to {
            return v;
        }
        if let Some(&s) = valid.get(&(v, to)) {
            return s;
        }
        let s = *shadows.entry((v, to)).or_insert_with(|| {
            let s = VReg(vreg_cluster.len() as u32);
            vreg_cluster.push(to);
            s
        });
        out.push(LOp {
            op: IrOp::Xfer { dst: s, src: v },
            cluster: to,
        });
        valid.insert((v, to), s);
        s
    };

    let mut fix_val = |v: Val,
                       to: ClusterId,
                       out: &mut Vec<LOp>,
                       valid: &mut HashMap<(VReg, ClusterId), VReg>,
                       vreg_cluster: &mut Vec<ClusterId>|
     -> Val {
        match v {
            Val::V(r) => Val::V(localize(r, to, out, valid, vreg_cluster)),
            imm => imm,
        }
    };

    for op in &block.ops {
        // Execution cluster of this op.
        let cluster: ClusterId = match op {
            IrOp::Select { cond, .. } => a.vbreg[cond.0 as usize],
            IrOp::CmpB { dst, .. } => a.vbreg[dst.0 as usize],
            IrOp::Store { base, value, .. } => base
                .vreg()
                .or(value.vreg())
                .map(|r| a.vreg[r.0 as usize])
                .unwrap_or(0),
            _ => {
                let dst = op.dst_vreg().expect("non-store ops define a vreg");
                a.vreg[dst.0 as usize]
            }
        };

        // Localise operands, then re-emit the op.
        let new_op = match *op {
            IrOp::Bin {
                kind,
                dst,
                a: x,
                b: y,
            } => IrOp::Bin {
                kind,
                dst,
                a: fix_val(x, cluster, &mut out, &mut valid, vreg_cluster),
                b: fix_val(y, cluster, &mut out, &mut valid, vreg_cluster),
            },
            IrOp::Mov { dst, src } => IrOp::Mov {
                dst,
                src: fix_val(src, cluster, &mut out, &mut valid, vreg_cluster),
            },
            IrOp::Load {
                w,
                dst,
                base,
                off,
                alias,
            } => IrOp::Load {
                w,
                dst,
                base: fix_val(base, cluster, &mut out, &mut valid, vreg_cluster),
                off,
                alias,
            },
            IrOp::Store {
                w,
                value,
                base,
                off,
                alias,
            } => IrOp::Store {
                w,
                value: fix_val(value, cluster, &mut out, &mut valid, vreg_cluster),
                base: fix_val(base, cluster, &mut out, &mut valid, vreg_cluster),
                off,
                alias,
            },
            IrOp::CmpR {
                kind,
                dst,
                a: x,
                b: y,
            } => IrOp::CmpR {
                kind,
                dst,
                a: fix_val(x, cluster, &mut out, &mut valid, vreg_cluster),
                b: fix_val(y, cluster, &mut out, &mut valid, vreg_cluster),
            },
            IrOp::CmpB {
                kind,
                dst,
                a: x,
                b: y,
            } => IrOp::CmpB {
                kind,
                dst,
                a: fix_val(x, cluster, &mut out, &mut valid, vreg_cluster),
                b: fix_val(y, cluster, &mut out, &mut valid, vreg_cluster),
            },
            IrOp::Select {
                dst,
                cond,
                a: x,
                b: y,
            } => IrOp::Select {
                dst,
                cond,
                a: fix_val(x, cluster, &mut out, &mut valid, vreg_cluster),
                b: fix_val(y, cluster, &mut out, &mut valid, vreg_cluster),
            },
            IrOp::Xfer { .. } => unreachable!("xfers are created here, not input"),
        };

        // A select whose destination lives elsewhere computes into a
        // temporary and ships it home.
        let mut emit_tail_xfer: Option<(VReg, VReg, ClusterId)> = None;
        let new_op = if let IrOp::Select {
            dst,
            cond,
            a: x,
            b: y,
        } = new_op
        {
            let home = vreg_cluster[dst.0 as usize];
            if home != cluster {
                let tmp = VReg(vreg_cluster.len() as u32);
                vreg_cluster.push(cluster);
                emit_tail_xfer = Some((dst, tmp, home));
                IrOp::Select {
                    dst: tmp,
                    cond,
                    a: x,
                    b: y,
                }
            } else {
                IrOp::Select {
                    dst,
                    cond,
                    a: x,
                    b: y,
                }
            }
        } else {
            new_op
        };

        // Redefinition invalidates shadow copies of the value.
        if let Some(d) = new_op.dst_vreg() {
            valid.retain(|(src, _), _| *src != d);
        }
        out.push(LOp {
            op: new_op,
            cluster,
        });
        if let Some((dst, tmp, home)) = emit_tail_xfer {
            valid.retain(|(src, _), _| *src != dst);
            out.push(LOp {
                op: IrOp::Xfer { dst, src: tmp },
                cluster: home,
            });
        }
    }

    let term_cluster = match block.term {
        Terminator::CondBr { cond, .. } => a.vbreg[cond.0 as usize],
        _ => 0,
    };

    LBlock {
        ops: out,
        term: block.term,
        term_cluster,
    }
}

/// Cluster usage summary of a legal kernel (vregs per cluster), used for
/// error reporting and tests.
pub fn pressure(lk: &LegalKernel, m: &MachineConfig) -> Vec<u32> {
    let mut p = vec![0u32; m.n_clusters as usize];
    for &c in &lk.vreg_cluster {
        p[c as usize] += 1;
    }
    p
}

#[allow(unused_imports)]
use crate::ir::KernelBuilder;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{CmpKind, KernelBuilder, MemWidth};
    use vex_isa::MachineConfig;

    #[test]
    fn pins_are_honoured() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let a = k.vreg_on(2);
        let b = k.vreg_on(3);
        k.movi(a, 1);
        k.movi(b, 2);
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        assert_eq!(asg.vreg[a.0 as usize], 2);
        assert_eq!(asg.vreg[b.0 as usize], 3);
    }

    #[test]
    fn xfer_inserted_for_cross_cluster_use() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let a = k.vreg_on(0);
        let b = k.vreg_on(1);
        let c = k.vreg_on(1);
        k.movi(a, 5);
        k.movi(b, 7);
        k.add(c, a, b); // a must travel 0 -> 1
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        let xfers: Vec<_> = lk.blocks[0]
            .ops
            .iter()
            .filter(|l| matches!(l.op, IrOp::Xfer { .. }))
            .collect();
        assert_eq!(xfers.len(), 1);
        assert_eq!(lk.xfer_src_cluster(xfers[0]), Some(0));
        assert_eq!(xfers[0].cluster, 1);
    }

    #[test]
    fn shadow_reused_within_block_and_invalidated_on_redef() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let a = k.vreg_on(0);
        let b = k.vreg_on(1);
        k.movi(a, 5);
        k.add(b, a, Val::Imm(1)); // xfer #1
        k.add(b, a, b); // shadow reused: no new xfer
        k.movi(a, 9); // redefines a
        k.add(b, a, b); // xfer #2 required
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        let n_xfers = lk.blocks[0]
            .ops
            .iter()
            .filter(|l| matches!(l.op, IrOp::Xfer { .. }))
            .count();
        assert_eq!(n_xfers, 2);
    }

    #[test]
    fn greedy_spreads_independent_chains() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        // 8 independent accumulator chains with no pins: placement should
        // use more than one cluster.
        let regs: Vec<_> = (0..8).map(|_| k.vreg()).collect();
        for &r in &regs {
            k.movi(r, 1);
        }
        for _ in 0..4 {
            for &r in &regs {
                k.add(r, r, Val::Imm(3));
            }
        }
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let used: std::collections::HashSet<_> =
            regs.iter().map(|r| asg.vreg[r.0 as usize]).collect();
        assert!(
            used.len() >= 2,
            "chains all landed on one cluster: {used:?}"
        );
    }

    #[test]
    fn store_runs_in_base_cluster() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let base = k.vreg_on(2);
        let v = k.vreg_on(0);
        k.movi(base, 0x100);
        k.movi(v, 42);
        k.store(MemWidth::W, v, base, 0, 1);
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        let store = lk.blocks[0]
            .ops
            .iter()
            .find(|l| matches!(l.op, IrOp::Store { .. }))
            .unwrap();
        assert_eq!(store.cluster, 2);
    }

    #[test]
    fn cond_br_cluster_follows_cmp_operands() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let exit = k.new_block();
        let i = k.vreg_on(3);
        k.movi(i, 0);
        k.cond_br(CmpKind::Lt, i, Val::Imm(10), exit, 1);
        k.switch_to(exit);
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        assert_eq!(lk.blocks[0].term_cluster, 3);
    }
}
