//! Register allocation: dedicated physical registers per virtual register.
//!
//! VEX gives each cluster 64 GPRs (index 0 hardwired to zero) and 8 branch
//! registers — a lot of architectural state for kernels of the size the
//! workloads use, so the allocator simply dedicates one physical register to
//! each virtual register in its assigned cluster. This keeps every
//! redefinition in place (the IR is SSA-less) and never needs spill code;
//! kernels that exceed a file get a precise error with per-cluster pressure
//! so the author can re-pin values.

use crate::cluster::LegalKernel;
use crate::CompileError;
use vex_isa::{BReg, MachineConfig, Reg};

/// Physical register maps.
#[derive(Clone, Debug)]
pub struct RegAlloc {
    /// Physical GPR of each vreg (including compiler shadows).
    pub vreg: Vec<Reg>,
    /// Physical branch register of each branch-class vreg.
    pub vbreg: Vec<BReg>,
}

/// Allocates registers for a legalised kernel.
pub fn allocate(lk: &LegalKernel, m: &MachineConfig) -> Result<RegAlloc, CompileError> {
    let n_clusters = m.n_clusters as usize;
    let mut next_gpr = vec![1u32; n_clusters]; // r0 is the zero register
    let mut vreg = Vec::with_capacity(lk.vreg_cluster.len());
    for &c in &lk.vreg_cluster {
        let idx = next_gpr[c as usize];
        if idx >= m.n_gprs as u32 {
            return Err(CompileError::OutOfRegisters {
                cluster: c,
                needed: lk.vreg_cluster.iter().filter(|&&x| x == c).count() as u32,
                available: m.n_gprs as u32 - 1,
                breg: false,
            });
        }
        next_gpr[c as usize] = idx + 1;
        vreg.push(Reg::new(c, idx as u8));
    }

    let mut next_breg = vec![0u32; n_clusters];
    let mut vbreg = Vec::with_capacity(lk.vbreg_cluster.len());
    for &c in &lk.vbreg_cluster {
        let idx = next_breg[c as usize];
        if idx >= m.n_bregs as u32 {
            return Err(CompileError::OutOfRegisters {
                cluster: c,
                needed: lk.vbreg_cluster.iter().filter(|&&x| x == c).count() as u32,
                available: m.n_bregs as u32,
                breg: true,
            });
        }
        next_breg[c as usize] = idx + 1;
        vbreg.push(BReg::new(c, idx as u8));
    }

    Ok(RegAlloc { vreg, vbreg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{assign_clusters, legalize_xfers};
    use crate::ir::KernelBuilder;

    #[test]
    fn registers_start_at_one_and_stay_local() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let a = k.vreg_on(1);
        let b = k.vreg_on(1);
        k.movi(a, 1);
        k.movi(b, 2);
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        let alloc = allocate(&lk, &m).unwrap();
        assert_eq!(alloc.vreg[0], Reg::new(1, 1));
        assert_eq!(alloc.vreg[1], Reg::new(1, 2));
    }

    #[test]
    fn gpr_exhaustion_is_reported() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let regs: Vec<_> = (0..70).map(|_| k.vreg_on(0)).collect();
        for &r in &regs {
            k.movi(r, 0);
        }
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        match allocate(&lk, &m) {
            Err(CompileError::OutOfRegisters {
                cluster: 0,
                breg: false,
                ..
            }) => {}
            other => panic!("expected GPR exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn breg_exhaustion_is_reported() {
        let m = MachineConfig::paper_4c4w();
        let mut k = KernelBuilder::new("t");
        let x = k.vreg_on(0);
        let d = k.vreg_on(0);
        k.movi(x, 1);
        // 40 selects need 40 branch registers; 4 clusters provide 32.
        for _ in 0..40 {
            k.select(crate::ir::CmpKind::Lt, d, x, 5, 1, 2);
        }
        k.halt();
        let kernel = k.finish();
        let asg = assign_clusters(&kernel, &m);
        let lk = legalize_xfers(&kernel, &asg, &m);
        match allocate(&lk, &m) {
            Err(CompileError::OutOfRegisters { breg: true, .. }) => {}
            other => panic!("expected breg exhaustion, got {other:?}"),
        }
    }
}
