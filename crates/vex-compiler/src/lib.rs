//! # vex-compiler — a miniature VLIW compiler for the VEX-like ISA
//!
//! The paper compiles its benchmarks with the VEX C compiler, an HP/ST ST200
//! derivative of the Multiflow compiler using Trace Scheduling and the
//! Bottom-Up-Greedy (BUG) cluster-assignment algorithm. That toolchain is
//! proprietary and unavailable, so this crate reimplements the parts the
//! evaluation depends on:
//!
//! * an SSA-less register-transfer [`ir`] in which the workloads are written;
//! * [`cluster`]: BUG-style cluster assignment of virtual registers with
//!   load balancing and author pinning;
//! * [`schedule`]: a latency-cognizant list scheduler with a full resource
//!   model, automatic inter-cluster `send`/`recv` insertion and two-phase
//!   branch lowering (compare ≥ 2 cycles before the branch);
//! * [`regalloc`]: dedicated-register allocation onto the 64 GPRs / 8 branch
//!   registers per cluster;
//! * a schedule [`verify`] pass that independently re-checks every
//!   dependence latency and resource bound (also used as a property-test
//!   oracle).
//!
//! The pipeline is exposed as [`compile`]:
//!
//! ```
//! use vex_compiler::{compile, ir::{KernelBuilder, Val}};
//! use vex_isa::MachineConfig;
//!
//! let mut k = KernelBuilder::new("double");
//! let x = k.vreg();
//! k.movi(x, 21);
//! k.add(x, Val::V(x), Val::V(x));
//! k.halt();
//! let program = compile(&k.finish(), &MachineConfig::paper_4c4w()).unwrap();
//! assert!(program.validate(&MachineConfig::paper_4c4w()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ir;
pub mod regalloc;
pub mod schedule;
pub mod verify;

use vex_isa::{MachineConfig, Program};

/// Compiler failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Too many live virtual registers pinned/assigned to one cluster.
    OutOfRegisters {
        /// Cluster that ran out.
        cluster: u8,
        /// Registers demanded.
        needed: u32,
        /// Registers available.
        available: u32,
        /// GPR (`false`) or branch register (`true`) file.
        breg: bool,
    },
    /// The kernel is malformed (dangling block, bad fallthrough, etc.).
    Malformed(String),
    /// The independent schedule verifier found a violation (compiler bug).
    BadSchedule(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::OutOfRegisters {
                cluster,
                needed,
                available,
                breg,
            } => write!(
                f,
                "cluster {cluster}: {needed} {} needed, {available} available",
                if *breg {
                    "branch registers"
                } else {
                    "registers"
                }
            ),
            CompileError::Malformed(m) => write!(f, "malformed kernel: {m}"),
            CompileError::BadSchedule(m) => write!(f, "schedule verification failed: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a kernel to a VLIW [`Program`] for machine `m`.
///
/// Passes: cluster assignment → inter-cluster transfer legalisation →
/// per-block list scheduling → schedule verification → register allocation →
/// emission (with explicit NOPs for empty cycles, branch-target patching and
/// code layout).
pub fn compile(kernel: &ir::Kernel, m: &MachineConfig) -> Result<Program, CompileError> {
    kernel.check()?;
    let assignment = cluster::assign_clusters(kernel, m);
    let legal = cluster::legalize_xfers(kernel, &assignment, m);
    let scheduled = schedule::schedule_kernel(&legal, m)?;
    verify::verify_schedule(&legal, &scheduled, m)?;
    let alloc = regalloc::allocate(&legal, m)?;
    let program = schedule::emit(&legal, &scheduled, &alloc, m);
    program
        .validate(m)
        .map_err(|e| CompileError::BadSchedule(format!("emitted program invalid: {e}")))?;
    Ok(program)
}
