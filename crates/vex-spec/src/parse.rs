//! Hand-rolled parser for the TOML subset spec grammar (see
//! `docs/SPECS.md`): top-level `key = value` pairs, `[cache]` /
//! `[icache]` / `[dcache]` / `[limits]` tables, and `[[machine]]` /
//! `[[mix]]` table arrays. Values are integers (decimal or `0x` hex, `_` separators),
//! double-quoted strings, booleans and single-line arrays of scalars.
//!
//! Parsing resolves everything: scale sugar becomes explicit budgets, mix
//! seeds become absolute, machine and cache tables are completed with the
//! paper defaults — so the canonical printer round-trips
//! (`parse ∘ print = id`) and semantic validation (cluster counts against
//! the simulator's `MAX_CLUSTERS`, functional-unit minimums, power-of-two
//! cache geometry, known technique labels and benchmark names) can point a
//! caret at the offending token.

use crate::diag::{Span, SpecError};
use crate::{
    MachineSpec, MixSpec, ServeSpec, SweepSpec, WorkloadRef, DEFAULT_MAX_CYCLES, DEFAULT_RETRIES,
    DEFAULT_SEED,
};
use vex_isa::{ClusterResources, Latencies, MachineConfig};
use vex_mem::{CacheParams, MemConfig};
use vex_sim::{MemoryMode, MtMode, Scale, Technique, MAX_CLUSTERS};

// ---- raw values -----------------------------------------------------

#[derive(Clone, Debug)]
enum Value {
    Int(u64),
    Str(String),
    Bool(bool),
    Array(Vec<(Value, Span)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "an integer",
            Value::Str(_) => "a string",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    key: String,
    value: Value,
    val_span: Span,
    line: String,
}

impl Entry {
    fn err(&self, msg: impl Into<String>) -> SpecError {
        SpecError::new(self.val_span, msg, self.line.clone())
    }

    fn int(&self) -> Result<u64, SpecError> {
        match &self.value {
            Value::Int(n) => Ok(*n),
            v => Err(self.err(format!("`{}` wants an integer, got {}", self.key, v.kind()))),
        }
    }

    fn int_in(&self, lo: u64, hi: u64) -> Result<u64, SpecError> {
        let n = self.int()?;
        if n < lo || n > hi {
            return Err(self.err(format!(
                "`{}` must be between {lo} and {hi}, got {n}",
                self.key
            )));
        }
        Ok(n)
    }

    fn str(&self) -> Result<&str, SpecError> {
        match &self.value {
            Value::Str(s) => Ok(s),
            v => Err(self.err(format!("`{}` wants a string, got {}", self.key, v.kind()))),
        }
    }

    fn bool(&self) -> Result<bool, SpecError> {
        match &self.value {
            Value::Bool(b) => Ok(*b),
            v => Err(self.err(format!(
                "`{}` wants `true` or `false`, got {}",
                self.key,
                v.kind()
            ))),
        }
    }

    /// The value as a list of scalars: arrays as-is, a lone scalar as a
    /// singleton (so `threads = 4` means `threads = [4]`).
    fn list(&self) -> Vec<(Value, Span)> {
        match &self.value {
            Value::Array(items) => items.clone(),
            v => vec![(v.clone(), self.val_span)],
        }
    }
}

// ---- sections -------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct Sect {
    entries: Vec<Entry>,
    header_span: Span,
    header_line: String,
}

impl Sect {
    fn push(&mut self, e: Entry) -> Result<(), SpecError> {
        if self.entries.iter().any(|q| q.key == e.key) {
            return Err(SpecError::new(
                Span::new(e.val_span.line, 1, e.key.chars().count() as u32),
                format!("duplicate key `{}`", e.key),
                e.line,
            ));
        }
        self.entries.push(e);
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<Entry> {
        self.entries
            .iter()
            .position(|e| e.key == key)
            .map(|i| self.entries.remove(i))
    }

    /// Errors on the first key not consumed by the section's schema.
    fn reject_unknown(&self, section: &str) -> Result<(), SpecError> {
        if let Some(e) = self.entries.first() {
            return Err(SpecError::new(
                Span::new(e.val_span.line, 1, e.key.chars().count() as u32),
                format!("unknown key `{}` in {section}", e.key),
                e.line.clone(),
            ));
        }
        Ok(())
    }

    fn header_err(&self, msg: impl Into<String>) -> SpecError {
        SpecError::new(self.header_span, msg, self.header_line.clone())
    }
}

// ---- line-level parsing ---------------------------------------------

/// Strips a `#` comment (outside double quotes) and trailing whitespace.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line[..i].trim_end(),
            _ => {}
        }
    }
    line.trim_end()
}

/// A cursor over one line's value region, tracking 1-based columns.
struct Cursor<'a> {
    rest: &'a str,
    col: u32,
    line_no: u32,
    line: &'a str,
}

impl<'a> Cursor<'a> {
    fn err_here(&self, len: u32, msg: impl Into<String>) -> SpecError {
        SpecError::new(
            Span::new(self.line_no, self.col, len),
            msg,
            self.line.to_string(),
        )
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest.trim_start_matches([' ', '\t']);
        self.col += (self.rest.len() - trimmed.len()) as u32;
        self.rest = trimmed;
    }

    fn eat(&mut self, n_bytes: usize) {
        self.col += self.rest[..n_bytes].chars().count() as u32;
        self.rest = &self.rest[n_bytes..];
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    /// Parses one scalar or array value.
    fn value(&mut self) -> Result<(Value, Span), SpecError> {
        self.skip_ws();
        match self.peek() {
            Some('[') => {
                let start = Span::new(self.line_no, self.col, 1);
                self.eat(1);
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    match self.peek() {
                        Some(']') => {
                            self.eat(1);
                            break;
                        }
                        None => {
                            return Err(
                                self.err_here(0, "unterminated array (arrays are single-line)")
                            )
                        }
                        Some('[') => {
                            return Err(self.err_here(1, "nested arrays are not supported"))
                        }
                        _ => {}
                    }
                    items.push(self.scalar()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.eat(1),
                        Some(']') => {}
                        Some(c) => {
                            return Err(
                                self.err_here(c.len_utf8() as u32, "expected `,` or `]` in array")
                            )
                        }
                        None => {
                            return Err(
                                self.err_here(0, "unterminated array (arrays are single-line)")
                            )
                        }
                    }
                }
                Ok((Value::Array(items), start))
            }
            _ => self.scalar(),
        }
    }

    /// Parses one scalar: integer, string or boolean.
    fn scalar(&mut self) -> Result<(Value, Span), SpecError> {
        self.skip_ws();
        let start_col = self.col;
        match self.peek() {
            Some('"') => {
                self.eat(1);
                let Some(end) = self.rest.find('"') else {
                    return Err(self.err_here(0, "unterminated string"));
                };
                let s = &self.rest[..end];
                if s.contains('\\') {
                    return Err(self.err_here(
                        s.chars().count() as u32,
                        "escape sequences are not supported in strings",
                    ));
                }
                let len = s.chars().count() as u32 + 2;
                self.eat(end + 1);
                Ok((
                    Value::Str(s.to_string()),
                    Span::new(self.line_no, start_col, len),
                ))
            }
            Some(c) if c.is_ascii_digit() => {
                let end = self
                    .rest
                    .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .unwrap_or(self.rest.len());
                let tok = &self.rest[..end];
                let span = Span::new(self.line_no, start_col, tok.chars().count() as u32);
                let digits: String = tok.chars().filter(|&c| c != '_').collect();
                let parsed = if let Some(hex) = digits
                    .strip_prefix("0x")
                    .or_else(|| digits.strip_prefix("0X"))
                {
                    u64::from_str_radix(hex, 16)
                } else {
                    digits.parse()
                };
                let n = parsed.map_err(|_| {
                    SpecError::new(span, format!("bad integer `{tok}`"), self.line.to_string())
                })?;
                self.eat(end);
                Ok((Value::Int(n), span))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let end = self
                    .rest
                    .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .unwrap_or(self.rest.len());
                let tok = &self.rest[..end];
                let span = Span::new(self.line_no, start_col, tok.chars().count() as u32);
                let v = match tok {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => {
                        return Err(SpecError::new(
                            span,
                            format!("bare word `{tok}` (strings are double-quoted)"),
                            self.line.to_string(),
                        ))
                    }
                };
                self.eat(end);
                Ok((v, span))
            }
            Some(c) => Err(self.err_here(c.len_utf8() as u32, "expected a value")),
            None => Err(self.err_here(0, "expected a value")),
        }
    }
}

// ---- the parser -----------------------------------------------------

/// Parses a [`SweepSpec`] from its text form. See the module docs for the
/// grammar; all semantic validation happens here, with caret diagnostics.
pub fn parse_sweep(text: &str) -> Result<SweepSpec, SpecError> {
    let mut top = Sect::default();
    let mut cache: Option<Sect> = None;
    let mut icache: Option<Sect> = None;
    let mut dcache: Option<Sect> = None;
    let mut limits: Option<Sect> = None;
    let mut serve: Option<Sect> = None;
    let mut machines: Vec<Sect> = Vec::new();
    let mut mix_sects: Vec<Sect> = Vec::new();

    // Which section subsequent `key = value` lines belong to.
    enum Where {
        Top,
        Cache,
        ICache,
        DCache,
        Limits,
        Serve,
        Machine,
        Mix,
    }
    let mut cur = Where::Top;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw);
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let indent = (line.chars().count() - trimmed.chars().count()) as u32;

        if let Some(inner) = trimmed
            .strip_prefix("[[")
            .and_then(|s| s.strip_suffix("]]"))
        {
            let span = Span::new(line_no, indent + 1, trimmed.chars().count() as u32);
            let sect = Sect {
                entries: Vec::new(),
                header_span: span,
                header_line: raw.to_string(),
            };
            match inner.trim() {
                "machine" => {
                    machines.push(sect);
                    cur = Where::Machine;
                }
                "mix" => {
                    mix_sects.push(sect);
                    cur = Where::Mix;
                }
                other => {
                    return Err(SpecError::new(
                        span,
                        format!("unknown table array `[[{other}]]` (machine, mix)"),
                        raw.to_string(),
                    ))
                }
            }
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let span = Span::new(line_no, indent + 1, trimmed.chars().count() as u32);
            let sect = Sect {
                entries: Vec::new(),
                header_span: span,
                header_line: raw.to_string(),
            };
            let (slot, place): (&mut Option<Sect>, Where) = match inner.trim() {
                "cache" => (&mut cache, Where::Cache),
                "icache" => (&mut icache, Where::ICache),
                "dcache" => (&mut dcache, Where::DCache),
                "limits" => (&mut limits, Where::Limits),
                "serve" => (&mut serve, Where::Serve),
                other => {
                    return Err(SpecError::new(
                        span,
                        format!("unknown table `[{other}]` (cache, icache, dcache, limits, serve)"),
                        raw.to_string(),
                    ))
                }
            };
            if slot.is_some() {
                return Err(SpecError::new(
                    span,
                    format!("table `[{}]` given twice", inner.trim()),
                    raw.to_string(),
                ));
            }
            *slot = Some(sect);
            cur = place;
            continue;
        }

        // `key = value`.
        let Some(eq) = trimmed.find('=') else {
            return Err(SpecError::new(
                Span::new(line_no, indent + 1, trimmed.chars().count() as u32),
                "expected `key = value` or a `[section]` header",
                raw.to_string(),
            ));
        };
        let key = trimmed[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::new(
                Span::new(line_no, indent + 1, eq.max(1) as u32),
                format!("bad key `{key}`"),
                raw.to_string(),
            ));
        }
        let val_off =
            (line.chars().count() - trimmed.chars().count()) + trimmed[..eq + 1].chars().count();
        let mut cursor = Cursor {
            rest: trimmed[eq + 1..].trim_end(),
            col: val_off as u32 + 1,
            line_no,
            line: raw,
        };
        let (value, val_span) = cursor.value()?;
        cursor.skip_ws();
        if let Some(c) = cursor.peek() {
            return Err(cursor.err_here(c.len_utf8() as u32, "trailing text after value"));
        }
        let entry = Entry {
            key: key.to_string(),
            value,
            val_span,
            line: raw.to_string(),
        };
        // `cur` only names a section after its header was parsed, but the
        // slot lookups must never be able to panic: a missing section
        // becomes a caret diagnostic pointing at the stray entry instead.
        let dest: &mut Sect = match cur {
            Where::Top => &mut top,
            Where::Cache => section_slot(cache.as_mut(), "[cache]", &entry)?,
            Where::ICache => section_slot(icache.as_mut(), "[icache]", &entry)?,
            Where::DCache => section_slot(dcache.as_mut(), "[dcache]", &entry)?,
            Where::Limits => section_slot(limits.as_mut(), "[limits]", &entry)?,
            Where::Serve => section_slot(serve.as_mut(), "[serve]", &entry)?,
            Where::Machine => section_slot(machines.last_mut(), "[[machine]]", &entry)?,
            Where::Mix => section_slot(mix_sects.last_mut(), "[[mix]]", &entry)?,
        };
        dest.push(entry)?;
    }

    build_spec(
        text, top, cache, icache, dcache, limits, serve, machines, mix_sects,
    )
}

/// The section an entry was routed to, or a caret diagnostic at the
/// entry when the section's storage is missing (an entry appearing
/// before its section header).
fn section_slot<'a>(
    slot: Option<&'a mut Sect>,
    header: &str,
    entry: &Entry,
) -> Result<&'a mut Sect, SpecError> {
    slot.ok_or_else(|| {
        SpecError::new(
            Span::new(entry.val_span.line, 1, entry.key.chars().count() as u32),
            format!(
                "`{}` appears before its `{header}` section header",
                entry.key
            ),
            entry.line.clone(),
        )
    })
}

/// The section header a key belongs to, when it is not a top-level key —
/// used to turn "unknown key at the top level" into a pointer at the
/// section the author forgot to open.
fn owning_section(key: &str) -> Option<&'static str> {
    match key {
        "size_bytes" | "assoc" | "line_bytes" | "miss_penalty" => Some("[cache]"),
        // `max_cycles` is also accepted at the top level (legacy spelling)
        // and so is consumed before this hint can fire; `retries` is
        // `[limits]`-only.
        "retries" => Some("[limits]"),
        "clusters"
        | "slots"
        | "alu"
        | "mul"
        | "mem"
        | "br"
        | "send"
        | "recv"
        | "lat_alu"
        | "lat_mul"
        | "lat_mem"
        | "lat_xfer"
        | "cmp_to_br"
        | "taken_branch_penalty"
        | "gprs"
        | "bregs" => Some("[[machine]]"),
        "members" => Some("[[mix]]"),
        "workers" | "heartbeat_ms" | "point_timeout_ms" | "backoff_base_ms" | "backoff_max_ms"
        | "quarantine" => Some("[serve]"),
        _ => None,
    }
}

// ---- semantic build -------------------------------------------------

// One parameter per grammar section; bundling them would only obscure
// the call site in `parse`.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    text: &str,
    mut top: Sect,
    cache: Option<Sect>,
    icache: Option<Sect>,
    dcache: Option<Sect>,
    limits: Option<Sect>,
    serve_sect: Option<Sect>,
    machine_sects: Vec<Sect>,
    mix_sects: Vec<Sect>,
) -> Result<SweepSpec, SpecError> {
    let name = match top.take("name") {
        Some(e) => e.str()?.to_string(),
        None => String::new(),
    };

    // Scale: the named preset is sugar; explicit budgets override it.
    let mut scale = Scale::DEFAULT;
    if let Some(e) = top.take("scale") {
        scale = match e.str()? {
            "quick" => Scale::QUICK,
            "default" => Scale::DEFAULT,
            "full" => Scale::FULL,
            "paper" => Scale::PAPER,
            other => {
                return Err(e.err(format!(
                    "unknown scale `{other}` (quick, default, full, paper)"
                )))
            }
        };
    }
    let inst_limit = match top.take("inst_limit") {
        Some(e) => e.int_in(1, u64::MAX)?,
        None => scale.inst_limit,
    };
    let timeslice = match top.take("timeslice") {
        Some(e) => e.int_in(1, u64::MAX)?,
        None => scale.timeslice,
    };
    // Execution-policy knobs live in `[limits]`; `max_cycles` is also
    // accepted at the top level (its original spelling) but not in both
    // places at once.
    let top_max_cycles = top.take("max_cycles");
    let mut max_cycles = None;
    let mut retries = DEFAULT_RETRIES;
    if let Some(mut s) = limits {
        if let Some(e) = s.take("max_cycles") {
            if let Some(dup) = &top_max_cycles {
                return Err(dup.err("`max_cycles` is given both at the top level and in [limits]"));
            }
            max_cycles = Some(e.int_in(1, u64::MAX)?);
        }
        if let Some(e) = s.take("retries") {
            retries = e.int_in(0, u32::MAX as u64)? as u32;
        }
        s.reject_unknown("[limits]")?;
    }
    let max_cycles = match (max_cycles, top_max_cycles) {
        (Some(n), _) => n,
        (None, Some(e)) => e.int_in(1, u64::MAX)?,
        (None, None) => DEFAULT_MAX_CYCLES,
    };
    // `[serve]` — sweep-service pool knobs; every key defaults
    // individually so a partial table is fine.
    let serve = match serve_sect {
        None => None,
        Some(mut s) => {
            let mut v = ServeSpec::default();
            if let Some(e) = s.take("workers") {
                v.workers = e.int_in(0, u32::MAX as u64)? as u32;
            }
            if let Some(e) = s.take("heartbeat_ms") {
                v.heartbeat_ms = e.int_in(1, u64::MAX)?;
            }
            if let Some(e) = s.take("point_timeout_ms") {
                v.point_timeout_ms = e.int_in(0, u64::MAX)?;
            }
            if let Some(e) = s.take("retries") {
                v.retries = e.int_in(0, u32::MAX as u64)? as u32;
            }
            if let Some(e) = s.take("backoff_base_ms") {
                v.backoff_base_ms = e.int_in(0, u64::MAX)?;
            }
            if let Some(e) = s.take("backoff_max_ms") {
                v.backoff_max_ms = e.int_in(0, u64::MAX)?;
            }
            if let Some(e) = s.take("quarantine") {
                v.quarantine = e.int_in(1, u32::MAX as u64)? as u32;
            }
            s.reject_unknown("[serve]")?;
            Some(v)
        }
    };
    let seed = match top.take("seed") {
        Some(e) => e.int()?,
        None => DEFAULT_SEED,
    };

    let threads = match top.take("threads") {
        Some(e) => {
            let mut out = Vec::new();
            for (v, span) in e.list() {
                match v {
                    Value::Int(n) if (1..=255).contains(&n) => out.push(n as u8),
                    Value::Int(n) => {
                        return Err(SpecError::new(
                            span,
                            format!("thread count must be between 1 and 255, got {n}"),
                            e.line.clone(),
                        ))
                    }
                    v => {
                        return Err(SpecError::new(
                            span,
                            format!("thread counts are integers, got {}", v.kind()),
                            e.line.clone(),
                        ))
                    }
                }
            }
            if out.is_empty() {
                return Err(e.err("`threads` must list at least one thread count"));
            }
            out
        }
        None => vec![2, 4],
    };

    let techniques = match top.take("techniques") {
        Some(e) => {
            let mut out = Vec::new();
            for (v, span) in e.list() {
                let label = match &v {
                    Value::Str(s) => s.as_str(),
                    v => {
                        return Err(SpecError::new(
                            span,
                            format!("technique labels are strings, got {}", v.kind()),
                            e.line.clone(),
                        ))
                    }
                };
                let Some(tech) = Technique::from_label(label) else {
                    return Err(SpecError::new(
                        span,
                        format!(
                            "unknown technique `{label}` (CSMT, SMT, CCSI NS, CCSI AS, \
                             COSI NS, COSI AS, OOSI NS, OOSI AS)"
                        ),
                        e.line.clone(),
                    ));
                };
                out.push(tech);
            }
            if out.is_empty() {
                return Err(e.err("`techniques` must list at least one technique"));
            }
            out
        }
        None => Technique::FIGURE16_SET.iter().map(|&(_, t)| t).collect(),
    };

    let renaming = match top.take("renaming") {
        Some(e) => e.bool()?,
        None => true,
    };
    let memory = match top.take("memory") {
        Some(e) => match e.str()? {
            "real" => MemoryMode::Real,
            "perfect" => MemoryMode::Perfect,
            other => return Err(e.err(format!("unknown memory mode `{other}` (real, perfect)"))),
        },
        None => MemoryMode::Real,
    };
    let mt = match top.take("mt") {
        Some(e) => match e.str()? {
            "smt" => MtMode::Simultaneous,
            "imt" => MtMode::Interleaved,
            "bmt" => MtMode::Blocked,
            other => return Err(e.err(format!("unknown mt mode `{other}` (smt, imt, bmt)"))),
        },
        None => MtMode::Simultaneous,
    };
    let respawn = match top.take("respawn") {
        Some(e) => e.bool()?,
        None => true,
    };
    let trace = match top.take("trace") {
        Some(e) => {
            let path = e.str()?;
            if path.is_empty() {
                return Err(e.err("`trace` needs a non-empty output path"));
            }
            Some(path.to_string())
        }
        None => None,
    };
    let journal = match top.take("journal") {
        Some(e) => {
            let path = e.str()?;
            if path.is_empty() {
                return Err(e.err("`journal` needs a non-empty sidecar path"));
            }
            Some(path.to_string())
        }
        None => None,
    };

    // Built-in mix shorthand; full [[mix]] tables are appended after.
    let mut mixes: Vec<MixSpec> = Vec::new();
    if let Some(e) = top.take("mixes") {
        for (v, span) in e.list() {
            let mname = match &v {
                Value::Str(s) => s.as_str(),
                v => {
                    return Err(SpecError::new(
                        span,
                        format!("mix names are strings, got {}", v.kind()),
                        e.line.clone(),
                    ))
                }
            };
            if !vex_workloads::MIXES.iter().any(|m| m.name == mname) {
                let known: Vec<&str> = vex_workloads::MIXES.iter().map(|m| m.name).collect();
                return Err(SpecError::new(
                    span,
                    format!("unknown built-in mix `{mname}` ({})", known.join(", ")),
                    e.line.clone(),
                ));
            }
            mixes.push(MixSpec::builtin(mname, seed));
        }
    }
    // Unknown top-level keys: if the key belongs to a section schema, the
    // author most likely forgot the header — say so instead of a generic
    // rejection.
    if let Some(e) = top.entries.first() {
        let msg = match owning_section(&e.key) {
            Some(header) => format!(
                "`{}` appears before its `{header}` section header (add the header above it)",
                e.key
            ),
            None => format!("unknown key `{}` in the top level", e.key),
        };
        return Err(SpecError::new(
            Span::new(e.val_span.line, 1, e.key.chars().count() as u32),
            msg,
            e.line.clone(),
        ));
    }

    let caches = build_caches(cache, icache, dcache)?;

    let machines = if machine_sects.is_empty() {
        vec![MachineSpec::paper()]
    } else {
        machine_sects
            .into_iter()
            .enumerate()
            .map(|(i, s)| build_machine(s, i))
            .collect::<Result<_, _>>()?
    };

    for (i, sect) in mix_sects.into_iter().enumerate() {
        let position = mixes.len();
        mixes.push(build_mix(sect, i, position, seed)?);
    }
    if mixes.is_empty() {
        let first = text.lines().next().unwrap_or("").to_string();
        return Err(SpecError::new(
            Span::new(1, 1, first.chars().count().max(1) as u32),
            "spec has no workload: add `mixes = [...]` or a `[[mix]]` table",
            first,
        ));
    }

    Ok(SweepSpec {
        name,
        inst_limit,
        timeslice,
        max_cycles,
        retries,
        seed,
        threads,
        techniques,
        renaming,
        memory,
        mt,
        respawn,
        caches,
        trace,
        journal,
        serve,
        machines,
        mixes,
    })
}

/// Resolves `[cache]` (both caches + miss penalty) then applies the
/// per-cache `[icache]` / `[dcache]` geometry overrides.
fn build_caches(
    cache: Option<Sect>,
    icache: Option<Sect>,
    dcache: Option<Sect>,
) -> Result<MemConfig, SpecError> {
    let mut out = MemConfig::paper();
    if let Some(mut s) = cache {
        if let Some(e) = s.take("miss_penalty") {
            out.miss_penalty = e.int_in(0, 1_000_000)? as u32;
        }
        let shared = cache_geometry(&mut s, out.icache)?;
        s.reject_unknown("[cache]")?;
        out.icache = shared;
        out.dcache = shared;
    }
    if let Some(mut s) = icache {
        out.icache = cache_geometry(&mut s, out.icache)?;
        s.reject_unknown("[icache]")?;
    }
    if let Some(mut s) = dcache {
        out.dcache = cache_geometry(&mut s, out.dcache)?;
        s.reject_unknown("[dcache]")?;
    }
    Ok(out)
}

/// Reads `size_bytes` / `assoc` / `line_bytes` over `base` defaults and
/// validates the geometry the `Cache` model requires (power-of-two line
/// size and set count).
fn cache_geometry(s: &mut Sect, base: CacheParams) -> Result<CacheParams, SpecError> {
    let mut p = base;
    let mut size_entry: Option<Entry> = None;
    if let Some(e) = s.take("size_bytes") {
        p.size_bytes = e.int_in(1, 1 << 30)? as u32;
        size_entry = Some(e);
    }
    if let Some(e) = s.take("assoc") {
        p.assoc = e.int_in(1, 64)? as u32;
    }
    if let Some(e) = s.take("line_bytes") {
        let n = e.int_in(4, 4096)? as u32;
        if !n.is_power_of_two() {
            return Err(e.err(format!("`line_bytes` must be a power of two, got {n}")));
        }
        p.line_bytes = n;
    }
    let per_set = p.assoc * p.line_bytes;
    let bad = p.size_bytes % per_set != 0 || !(p.size_bytes / per_set).is_power_of_two();
    if bad {
        let msg = format!(
            "cache of {} bytes with {}-way sets of {}-byte lines needs a \
             power-of-two set count ({} x {} x 2^k bytes)",
            p.size_bytes, p.assoc, p.line_bytes, p.assoc, p.line_bytes
        );
        return Err(match size_entry {
            Some(e) => e.err(msg),
            None => s.header_err(msg),
        });
    }
    Ok(p)
}

/// Takes a `u8`-ranged machine key with a default.
fn take_u8(s: &mut Sect, key: &str, default: u8, lo: u64) -> Result<u8, SpecError> {
    match s.take(key) {
        Some(e) => Ok(e.int_in(lo, 255)? as u8),
        None => Ok(default),
    }
}

fn build_machine(mut s: Sect, idx: usize) -> Result<MachineSpec, SpecError> {
    let paper = MachineConfig::paper_4c4w();
    let name = match s.take("name") {
        Some(e) => e.str()?.to_string(),
        None => format!("m{idx}"),
    };

    let n_clusters = match s.take("clusters") {
        Some(e) => {
            let n = e.int()?;
            if n < 1 || n > MAX_CLUSTERS as u64 {
                return Err(e.err(format!(
                    "machine has {n} clusters but the simulator supports 1 to {MAX_CLUSTERS}"
                )));
            }
            n as u8
        }
        None => paper.n_clusters,
    };
    let cluster = ClusterResources {
        slots: take_u8(&mut s, "slots", paper.cluster.slots, 1)?,
        alu: take_u8(&mut s, "alu", paper.cluster.alu, 1)?,
        mul: take_u8(&mut s, "mul", paper.cluster.mul, 0)?,
        mem: take_u8(&mut s, "mem", paper.cluster.mem, 1)?,
        br: take_u8(&mut s, "br", paper.cluster.br, 1)?,
        send: take_u8(&mut s, "send", paper.cluster.send, 0)?,
        recv: take_u8(&mut s, "recv", paper.cluster.recv, 0)?,
    };
    let lat = Latencies {
        alu: take_u8(&mut s, "lat_alu", paper.lat.alu, 1)?,
        mul: take_u8(&mut s, "lat_mul", paper.lat.mul, 1)?,
        mem: take_u8(&mut s, "lat_mem", paper.lat.mem, 1)?,
        xfer: take_u8(&mut s, "lat_xfer", paper.lat.xfer, 1)?,
        cmp_to_br: take_u8(&mut s, "cmp_to_br", paper.lat.cmp_to_br, 1)?,
    };
    let taken_branch_penalty = take_u8(
        &mut s,
        "taken_branch_penalty",
        paper.taken_branch_penalty,
        0,
    )?;
    let n_gprs = match s.take("gprs") {
        Some(e) => e.int_in(2, 64)? as u8,
        None => paper.n_gprs,
    };
    let n_bregs = match s.take("bregs") {
        Some(e) => e.int_in(1, 8)? as u8,
        None => paper.n_bregs,
    };
    s.reject_unknown("[[machine]]")?;

    Ok(MachineSpec {
        name,
        config: MachineConfig {
            n_clusters,
            cluster,
            lat,
            taken_branch_penalty,
            n_gprs,
            n_bregs,
        },
    })
}

fn build_mix(
    mut s: Sect,
    idx: usize,
    position: usize,
    base_seed: u64,
) -> Result<MixSpec, SpecError> {
    let name = match s.take("name") {
        Some(e) => e.str()?.to_string(),
        None => format!("mix{idx}"),
    };
    let Some(members_entry) = s.take("members") else {
        return Err(
            s.header_err("mix needs a `members` list (benchmark names or .vex/.vexb paths)")
        );
    };
    let mut members = Vec::new();
    for (v, span) in members_entry.list() {
        let m = match &v {
            Value::Str(s) => s.as_str(),
            v => {
                return Err(SpecError::new(
                    span,
                    format!("mix members are strings, got {}", v.kind()),
                    members_entry.line.clone(),
                ))
            }
        };
        let r = WorkloadRef::classify(m);
        if let WorkloadRef::Builtin(b) = &r {
            if vex_workloads::by_name(b).is_none() {
                let known: Vec<&str> = vex_workloads::BENCHMARKS.iter().map(|b| b.name).collect();
                return Err(SpecError::new(
                    span,
                    format!(
                        "`{b}` is neither a built-in benchmark ({}) nor a .vex/.vexb path",
                        known.join(", ")
                    ),
                    members_entry.line.clone(),
                ));
            }
        }
        members.push(r);
    }
    if members.is_empty() {
        return Err(members_entry.err("mix needs at least one member"));
    }
    let seed = match s.take("seed") {
        Some(e) => e.int()?,
        None => {
            // A mix named after a built-in keeps its Figure 13(b) offset so
            // sub-grids reproduce full-grid numbers; custom mixes take their
            // position in the spec's mix list.
            match vex_workloads::MIXES.iter().position(|m| m.name == name) {
                Some(i) => base_seed + i as u64,
                None => base_seed + position as u64,
            }
        }
    };
    s.reject_unknown("[[mix]]")?;
    Ok(MixSpec {
        name,
        members,
        seed,
    })
}
