//! Canonical printer for [`SweepSpec`]: every field explicit, fixed key
//! order, one normal form — so `parse(print(spec)) == spec` holds for any
//! spec value (property-tested in `tests/roundtrip.rs`).

use crate::SweepSpec;
use std::fmt::Write;
use vex_mem::CacheParams;

/// Prints the canonical text form of a spec.
pub fn print_sweep(s: &SweepSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name = \"{}\"", s.name);
    let _ = writeln!(out, "inst_limit = {}", s.inst_limit);
    let _ = writeln!(out, "timeslice = {}", s.timeslice);
    let _ = writeln!(out, "seed = {}", s.seed);
    let threads: Vec<String> = s
        .threads
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    let _ = writeln!(out, "threads = [{}]", threads.join(", "));
    let techs: Vec<String> = s
        .techniques
        .iter()
        .map(|t| format!("\"{}\"", t.label()))
        .collect();
    let _ = writeln!(out, "techniques = [{}]", techs.join(", "));
    let _ = writeln!(out, "renaming = {}", s.renaming);
    let _ = writeln!(
        out,
        "memory = \"{}\"",
        match s.memory {
            vex_sim::MemoryMode::Real => "real",
            vex_sim::MemoryMode::Perfect => "perfect",
        }
    );
    let _ = writeln!(
        out,
        "mt = \"{}\"",
        match s.mt {
            vex_sim::MtMode::Simultaneous => "smt",
            vex_sim::MtMode::Interleaved => "imt",
            vex_sim::MtMode::Blocked => "bmt",
        }
    );
    let _ = writeln!(out, "respawn = {}", s.respawn);
    if let Some(t) = &s.trace {
        let _ = writeln!(out, "trace = \"{t}\"");
    }
    if let Some(j) = &s.journal {
        let _ = writeln!(out, "journal = \"{j}\"");
    }

    let _ = writeln!(out, "\n[limits]");
    let _ = writeln!(out, "max_cycles = {}", s.max_cycles);
    let _ = writeln!(out, "retries = {}", s.retries);

    // `[serve]` only when the spec says something about serving: `None`
    // and `Some(default)` are distinct values, so the table must be
    // omitted (not defaulted) to keep `parse(print(s)) == s`.
    if let Some(v) = &s.serve {
        let _ = writeln!(out, "\n[serve]");
        let _ = writeln!(out, "workers = {}", v.workers);
        let _ = writeln!(out, "heartbeat_ms = {}", v.heartbeat_ms);
        let _ = writeln!(out, "point_timeout_ms = {}", v.point_timeout_ms);
        let _ = writeln!(out, "retries = {}", v.retries);
        let _ = writeln!(out, "backoff_base_ms = {}", v.backoff_base_ms);
        let _ = writeln!(out, "backoff_max_ms = {}", v.backoff_max_ms);
        let _ = writeln!(out, "quarantine = {}", v.quarantine);
    }

    let _ = writeln!(out, "\n[cache]");
    if s.caches.icache == s.caches.dcache {
        print_geometry(&mut out, s.caches.icache);
        let _ = writeln!(out, "miss_penalty = {}", s.caches.miss_penalty);
    } else {
        let _ = writeln!(out, "miss_penalty = {}", s.caches.miss_penalty);
        let _ = writeln!(out, "\n[icache]");
        print_geometry(&mut out, s.caches.icache);
        let _ = writeln!(out, "\n[dcache]");
        print_geometry(&mut out, s.caches.dcache);
    }

    for m in &s.machines {
        let _ = writeln!(out, "\n[[machine]]");
        let _ = writeln!(out, "name = \"{}\"", m.name);
        let c = &m.config;
        let _ = writeln!(out, "clusters = {}", c.n_clusters);
        let _ = writeln!(out, "slots = {}", c.cluster.slots);
        let _ = writeln!(out, "alu = {}", c.cluster.alu);
        let _ = writeln!(out, "mul = {}", c.cluster.mul);
        let _ = writeln!(out, "mem = {}", c.cluster.mem);
        let _ = writeln!(out, "br = {}", c.cluster.br);
        let _ = writeln!(out, "send = {}", c.cluster.send);
        let _ = writeln!(out, "recv = {}", c.cluster.recv);
        let _ = writeln!(out, "lat_alu = {}", c.lat.alu);
        let _ = writeln!(out, "lat_mul = {}", c.lat.mul);
        let _ = writeln!(out, "lat_mem = {}", c.lat.mem);
        let _ = writeln!(out, "lat_xfer = {}", c.lat.xfer);
        let _ = writeln!(out, "cmp_to_br = {}", c.lat.cmp_to_br);
        let _ = writeln!(out, "taken_branch_penalty = {}", c.taken_branch_penalty);
        let _ = writeln!(out, "gprs = {}", c.n_gprs);
        let _ = writeln!(out, "bregs = {}", c.n_bregs);
    }

    for x in &s.mixes {
        let _ = writeln!(out, "\n[[mix]]");
        let _ = writeln!(out, "name = \"{}\"", x.name);
        let _ = writeln!(out, "seed = {}", x.seed);
        let members: Vec<String> = x
            .members
            .iter()
            .map(|m| format!("\"{}\"", m.as_str()))
            .collect();
        let _ = writeln!(out, "members = [{}]", members.join(", "));
    }
    out
}

fn print_geometry(out: &mut String, p: CacheParams) {
    let _ = writeln!(out, "size_bytes = {}", p.size_bytes);
    let _ = writeln!(out, "assoc = {}", p.assoc);
    let _ = writeln!(out, "line_bytes = {}", p.line_bytes);
}
