//! # vex-spec — declarative run and sweep specifications
//!
//! The paper's evaluation is a grid: technique points × workload mixes ×
//! thread counts × machine and cache geometries. This crate makes that grid
//! a *value*: a [`SweepSpec`] names every axis declaratively, parses from a
//! hand-rolled, dependency-free TOML subset (in the style of `vex-asm`:
//! line-oriented, span-carrying caret diagnostics, and a canonical printer
//! with `parse ∘ print = id`), and expands into deduplicated [`RunSpec`]
//! points that convert 1:1 into simulator [`SimConfig`]s.
//!
//! Everything that used to hand-roll its own sweep — the figure modules,
//! `bin/repro`, the `sim_throughput` bench, the `vex` CLI — now builds or
//! loads one of these specs and hands it to `vex_experiments::SweepRunner`.
//! See `docs/SPECS.md` for the grammar and worked examples.
//!
//! ```
//! use vex_spec::SweepSpec;
//!
//! let spec = SweepSpec::parse(
//!     "name = \"demo\"\n\
//!      scale = \"quick\"\n\
//!      techniques = [\"CSMT\", \"CCSI AS\"]\n\
//!      threads = [2]\n\
//!      mixes = [\"llhh\"]\n",
//! )
//! .unwrap();
//! assert_eq!(spec.expand().len(), 2); // 1 mix x 2 techniques x 1 thread count
//! assert_eq!(SweepSpec::parse(&spec.print()).unwrap(), spec);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod parse;
pub mod print;

pub use diag::{Span, SpecError};
pub use parse::parse_sweep;
pub use print::print_sweep;

use vex_isa::MachineConfig;
use vex_mem::MemConfig;
use vex_sim::{MemoryMode, MtMode, Scale, SimConfig, Technique};

/// Default base seed (the experiment harness's historical `0x5EED_0000`).
pub const DEFAULT_SEED: u64 = 0x5EED_0000;

/// Default hard safety bound on simulated cycles per point.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Default bounded-retry count for transiently failing sweep points.
pub const DEFAULT_RETRIES: u32 = 0;

/// One workload member of a mix: a built-in benchmark by name, or a `.vex`
/// / `.vexb` program on disk (resolved by the runner's loader).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkloadRef {
    /// A benchmark from `vex_workloads::BENCHMARKS`.
    Builtin(String),
    /// A path to a `.vex` (text) or `.vexb` (binary) program.
    Path(String),
}

impl WorkloadRef {
    /// Classifies a member string: anything that looks like a file path
    /// (contains `/` or ends in `.vex`/`.vexb`) is a [`WorkloadRef::Path`];
    /// everything else must name a built-in benchmark.
    pub fn classify(s: &str) -> WorkloadRef {
        if s.contains('/') || s.ends_with(".vex") || s.ends_with(".vexb") {
            WorkloadRef::Path(s.to_string())
        } else {
            WorkloadRef::Builtin(s.to_string())
        }
    }

    /// The member string as written in a spec.
    pub fn as_str(&self) -> &str {
        match self {
            WorkloadRef::Builtin(s) | WorkloadRef::Path(s) => s,
        }
    }
}

/// A named workload mix with its resolved scheduler seed.
///
/// Seeds are absolute (not offsets): parsing resolves each mix's seed from
/// the spec-level base unless the mix sets one explicitly, and a built-in
/// mix keeps its Figure 13(b) index as the offset so a sub-grid spec
/// reproduces the exact numbers of the full grid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MixSpec {
    /// Display name (`llhh`, or a custom label).
    pub name: String,
    /// The member programs.
    pub members: Vec<WorkloadRef>,
    /// Replacement-scheduler seed for every point of this mix.
    pub seed: u64,
}

impl MixSpec {
    /// A built-in mix from `vex_workloads::MIXES`, seeded `base + index`
    /// exactly like the historical `Sweep::run` grid. Panics on unknown
    /// names (builders are for code, the parser diagnoses user input).
    pub fn builtin(name: &str, base_seed: u64) -> MixSpec {
        let (idx, mix) = vex_workloads::MIXES
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name)
            .unwrap_or_else(|| panic!("unknown built-in mix `{name}`"));
        MixSpec {
            name: name.to_string(),
            members: mix
                .members
                .iter()
                .map(|m| WorkloadRef::Builtin((*m).to_string()))
                .collect(),
            seed: base_seed + idx as u64,
        }
    }

    /// A single-benchmark "mix" (the Figure 13 characterisation shape).
    pub fn single(benchmark: &str, seed: u64) -> MixSpec {
        MixSpec {
            name: benchmark.to_string(),
            members: vec![WorkloadRef::Builtin(benchmark.to_string())],
            seed,
        }
    }
}

/// A named machine geometry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineSpec {
    /// Display name (`paper`, `narrow2`, ...).
    pub name: String,
    /// The full machine description.
    pub config: MachineConfig,
}

impl MachineSpec {
    /// The paper's 4-cluster, 4-issue machine.
    pub fn paper() -> MachineSpec {
        MachineSpec {
            name: "paper".to_string(),
            config: MachineConfig::paper_4c4w(),
        }
    }
}

/// Sweep-service knobs (the `[serve]` table): how `vex serve` supervises
/// its worker pool when this spec is submitted or used as the server's
/// configuration. None of these affect simulation results — they are
/// deliberately excluded from the content-addressed point key, so the same
/// spec served with different pool settings hits the same cache entries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeSpec {
    /// Worker processes to supervise (0 = one per available core).
    pub workers: u32,
    /// Interval between a busy worker's liveness heartbeats, in
    /// milliseconds.
    pub heartbeat_ms: u64,
    /// Hard wall-clock ceiling per point attempt, in milliseconds
    /// (0 = disabled; the `[limits] max_cycles` watchdog still bounds
    /// simulated work). A point running longer is reaped and re-queued.
    pub point_timeout_ms: u64,
    /// Re-queue budget for a point whose worker crashed, hung or failed:
    /// attempted `1 + retries` times before `PointError::Failed`.
    pub retries: u32,
    /// First-retry backoff delay, in milliseconds (exponential after).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub backoff_max_ms: u64,
    /// Poison-point quarantine: after this many worker *crashes* on one
    /// point, the point is failed outright so it cannot keep killing the
    /// pool, regardless of remaining retries.
    pub quarantine: u32,
}

impl Default for ServeSpec {
    fn default() -> ServeSpec {
        ServeSpec {
            workers: 0,
            heartbeat_ms: 1_000,
            point_timeout_ms: 0,
            retries: 3,
            backoff_base_ms: 100,
            backoff_max_ms: 5_000,
            quarantine: 5,
        }
    }
}

/// A declarative sweep: every axis of the evaluation grid plus the shared
/// scalar run parameters. Construct with [`SweepSpec::base`] /
/// [`SweepSpec::paper_grid`] or parse from text with [`SweepSpec::parse`].
#[derive(Clone, PartialEq, Debug)]
pub struct SweepSpec {
    /// Spec name (free-form, used in reports and JSON output).
    pub name: String,
    /// Per-benchmark instruction budget terminating each point.
    pub inst_limit: u64,
    /// Multitasking timeslice in cycles.
    pub timeslice: u64,
    /// Hard safety bound on simulated cycles per point (`[limits]`
    /// section; a non-terminating point stops with `StopReason::Exhausted`
    /// and partial statistics instead of hanging a worker).
    pub max_cycles: u64,
    /// Bounded retries for transiently failing points (`[limits]`
    /// section): a point is attempted `1 + retries` times before its
    /// failure is recorded in the outcome.
    pub retries: u32,
    /// Base seed: mixes without an explicit seed resolve against this.
    pub seed: u64,
    /// Hardware thread counts (axis).
    pub threads: Vec<u8>,
    /// Technique points (axis).
    pub techniques: Vec<Technique>,
    /// Cluster renaming (§IV).
    pub renaming: bool,
    /// Cache model selection (*IPCr* vs *IPCp*).
    pub memory: MemoryMode,
    /// Multithreading discipline.
    pub mt: MtMode,
    /// Respawn benchmarks that finish early (§VI-A).
    pub respawn: bool,
    /// Cache geometry and miss penalty.
    pub caches: MemConfig,
    /// Stream each run's event trace to this `.vext` path. Honored by
    /// single-point runs (`vex run --spec`); sweeps ignore it — a grid of
    /// points cannot share one trace file.
    pub trace: Option<String>,
    /// Checkpoint journal sidecar for crash-safe sweeps: each completed
    /// point is appended (fsync'd) so `vex sweep --resume` can skip it
    /// after a crash. The `--journal` CLI flag overrides this knob.
    pub journal: Option<String>,
    /// Sweep-service knobs (`[serve]` table). `None` when the spec says
    /// nothing about serving — the service then applies
    /// [`ServeSpec::default`]. Result-neutral: excluded from point keys.
    pub serve: Option<ServeSpec>,
    /// Machine geometries (axis).
    pub machines: Vec<MachineSpec>,
    /// Workload mixes (axis).
    pub mixes: Vec<MixSpec>,
}

/// One fully-resolved grid point, convertible 1:1 into a [`SimConfig`].
#[derive(Clone, PartialEq, Debug)]
pub struct RunSpec {
    /// Name of the spec this point came from.
    pub spec_name: String,
    /// The mix (with its resolved seed).
    pub mix: MixSpec,
    /// Index of the mix in the deduplicated mix axis.
    pub mix_index: usize,
    /// The technique point.
    pub technique: Technique,
    /// Hardware thread count.
    pub threads: u8,
    /// The machine geometry.
    pub machine: MachineSpec,
    /// Index of the machine in the deduplicated machine axis.
    pub machine_index: usize,
    /// Instruction budget.
    pub inst_limit: u64,
    /// Timeslice in cycles.
    pub timeslice: u64,
    /// Cycle safety bound.
    pub max_cycles: u64,
    /// Cluster renaming.
    pub renaming: bool,
    /// Cache model selection.
    pub memory: MemoryMode,
    /// Multithreading discipline.
    pub mt: MtMode,
    /// Respawn policy.
    pub respawn: bool,
    /// Cache geometry and miss penalty.
    pub caches: MemConfig,
    /// Event-trace output path (single-point runs only).
    pub trace: Option<String>,
}

impl RunSpec {
    /// The simulator configuration of this point.
    pub fn to_sim_config(&self) -> SimConfig {
        SimConfig {
            machine: self.machine.config.clone(),
            caches: self.caches,
            technique: self.technique,
            mt_mode: self.mt,
            n_threads: self.threads,
            renaming: self.renaming,
            memory: self.memory,
            timeslice: self.timeslice,
            inst_limit: self.inst_limit,
            max_cycles: self.max_cycles,
            seed: self.mix.seed,
            respawn: self.respawn,
        }
    }

    /// Point label for reports: `mix/TECH_LABEL/Nt/machine`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}t/{}",
            self.mix.name,
            self.technique.label().replace(' ', "_"),
            self.threads,
            self.machine.name
        )
    }
}

impl SweepSpec {
    /// An empty-axis spec with the shared defaults: paper machine and
    /// caches, all-technique axis, 2- and 4-thread machines, real memory,
    /// SMT discipline, renaming and respawn on. Mixes must be added.
    pub fn base(scale: Scale) -> SweepSpec {
        SweepSpec {
            name: String::new(),
            inst_limit: scale.inst_limit,
            timeslice: scale.timeslice,
            max_cycles: DEFAULT_MAX_CYCLES,
            retries: DEFAULT_RETRIES,
            seed: DEFAULT_SEED,
            threads: vec![2, 4],
            techniques: Technique::FIGURE16_SET.iter().map(|&(_, t)| t).collect(),
            renaming: true,
            memory: MemoryMode::Real,
            mt: MtMode::Simultaneous,
            respawn: true,
            caches: MemConfig::paper(),
            trace: None,
            journal: None,
            serve: None,
            machines: vec![MachineSpec::paper()],
            mixes: Vec::new(),
        }
    }

    /// The paper's full evaluation grid: 9 mixes × 8 techniques × {2, 4}
    /// threads on the paper machine — what `Sweep::run` simulates.
    pub fn paper_grid(scale: Scale) -> SweepSpec {
        let mut s = Self::base(scale);
        s.name = "paper-grid".to_string();
        s.mixes = vex_workloads::MIXES
            .iter()
            .map(|m| MixSpec::builtin(m.name, DEFAULT_SEED))
            .collect();
        s
    }

    /// The run scale (instruction budget + timeslice pair).
    pub fn scale(&self) -> Scale {
        Scale {
            inst_limit: self.inst_limit,
            timeslice: self.timeslice,
        }
    }

    /// Parses a spec from its TOML-subset text form.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        parse_sweep(text)
    }

    /// Prints the canonical text form: `parse(print(spec)) == spec`.
    pub fn print(&self) -> String {
        print_sweep(self)
    }

    /// Expands the grid into deduplicated run points, ordered mix-major
    /// (mix, then machine, then technique, then threads). Duplicate axis
    /// entries — same technique listed twice, repeated thread counts,
    /// identical machine geometries or identical (members, seed) mixes —
    /// collapse to their first occurrence.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut techniques: Vec<Technique> = Vec::new();
        for &t in &self.techniques {
            if !techniques.contains(&t) {
                techniques.push(t);
            }
        }
        let mut threads: Vec<u8> = Vec::new();
        for &n in &self.threads {
            if !threads.contains(&n) {
                threads.push(n);
            }
        }
        let mut machines: Vec<&MachineSpec> = Vec::new();
        for m in &self.machines {
            if !machines.iter().any(|q| q.config == m.config) {
                machines.push(m);
            }
        }
        let mut mixes: Vec<&MixSpec> = Vec::new();
        for x in &self.mixes {
            if !mixes
                .iter()
                .any(|q| q.members == x.members && q.seed == x.seed)
            {
                mixes.push(x);
            }
        }

        let mut points = Vec::new();
        for (xi, mix) in mixes.iter().enumerate() {
            for (mi, machine) in machines.iter().enumerate() {
                for &technique in &techniques {
                    for &n in &threads {
                        points.push(RunSpec {
                            spec_name: self.name.clone(),
                            mix: (*mix).clone(),
                            mix_index: xi,
                            technique,
                            threads: n,
                            machine: (*machine).clone(),
                            machine_index: mi,
                            inst_limit: self.inst_limit,
                            timeslice: self.timeslice,
                            max_cycles: self.max_cycles,
                            renaming: self.renaming,
                            memory: self.memory,
                            mt: self.mt,
                            respawn: self.respawn,
                            caches: self.caches,
                            trace: self.trace.clone(),
                        });
                    }
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_expands_to_144_points() {
        let spec = SweepSpec::paper_grid(Scale::QUICK);
        assert_eq!(spec.expand().len(), 9 * 8 * 2);
    }

    #[test]
    fn expansion_deduplicates_every_axis() {
        let mut spec = SweepSpec::base(Scale::QUICK);
        spec.mixes = vec![
            MixSpec::builtin("llhh", DEFAULT_SEED),
            MixSpec::builtin("llhh", DEFAULT_SEED),
        ];
        spec.techniques = vec![Technique::csmt(), Technique::csmt()];
        spec.threads = vec![4, 4];
        spec.machines = vec![MachineSpec::paper(), MachineSpec::paper()];
        assert_eq!(spec.expand().len(), 1);
    }

    #[test]
    fn builtin_mix_seed_matches_figure13b_index() {
        // mmhh is index 7 in MIXES; the historical sweep seeded it
        // base + 7 and sub-grids must reproduce that.
        let m = MixSpec::builtin("mmhh", DEFAULT_SEED);
        assert_eq!(m.seed, DEFAULT_SEED + 7);
    }

    #[test]
    fn run_spec_reproduces_paper_sim_config() {
        let mut spec = SweepSpec::base(Scale::PAPER);
        spec.max_cycles = 50_000_000;
        spec.mixes = vec![MixSpec {
            name: "golden".into(),
            members: vec![WorkloadRef::Builtin("idct".into())],
            seed: 0xC0FFEE,
        }];
        spec.threads = vec![2];
        for (_, tech) in Technique::FIGURE16_SET {
            let mut s = spec.clone();
            s.techniques = vec![tech];
            let points = s.expand();
            assert_eq!(points.len(), 1);
            assert_eq!(points[0].to_sim_config(), SimConfig::paper(tech, 2));
        }
    }
}
