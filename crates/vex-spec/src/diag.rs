//! Span-carrying diagnostics for spec files, rendered in the same
//! compiler-style caret format as `vex-asm`'s assembly errors.

use std::fmt;

/// A source position: 1-based line and column of the offending token.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// Length of the offending token in characters (0 for end-of-line).
    pub len: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, col: u32, len: u32) -> Self {
        Span { line, col, len }
    }
}

/// A spec error with enough context to render a caret diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecError {
    /// Where the error was detected.
    pub span: Span,
    /// What went wrong.
    pub msg: String,
    /// The full source line the span points into (for rendering).
    pub source_line: String,
}

impl SpecError {
    /// Builds an error at `span`; `source_line` is the raw text of that
    /// line.
    pub fn new(span: Span, msg: impl Into<String>, source_line: impl Into<String>) -> Self {
        SpecError {
            span,
            msg: msg.into(),
            source_line: source_line.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error at line {}:{}: {}",
            self.span.line, self.span.col, self.msg
        )?;
        writeln!(f, "  | {}", self.source_line)?;
        let pad = " ".repeat(self.span.col.saturating_sub(1) as usize);
        let carets = "^".repeat((self.span.len.max(1)) as usize);
        write!(f, "  | {pad}{carets}")
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_offending_token() {
        let e = SpecError::new(
            Span::new(4, 12, 2),
            "machine has 32 clusters but the simulator supports at most 16",
            "clusters = 32",
        );
        let text = e.to_string();
        assert!(text.contains("line 4:12"), "{text}");
        assert!(text.contains("^^"), "{text}");
    }
}
