//! Round-trip property of the spec layer: `parse(print(spec)) == spec`
//! for randomized specs covering every axis (techniques, threads, machine
//! geometries, split cache geometries, built-in and path workloads), plus
//! a few targeted fixed cases.

use proptest::prelude::*;
use vex_isa::{ClusterResources, Latencies, MachineConfig};
use vex_mem::{CacheParams, MemConfig};
use vex_sim::{MemoryMode, MtMode, Scale, Technique};
use vex_spec::{MachineSpec, MixSpec, ServeSpec, SweepSpec, WorkloadRef};

// ---- strategies ---------------------------------------------------

fn technique() -> impl Strategy<Value = Technique> {
    (0usize..Technique::FIGURE16_SET.len()).prop_map(|i| Technique::FIGURE16_SET[i].1)
}

/// A valid cache geometry: power-of-two set count by construction.
fn cache_params() -> impl Strategy<Value = CacheParams> {
    ((0u32..10), (1u32..9), (2u32..8)).prop_map(|(sets_log, assoc, line_log)| {
        let line_bytes = 1 << line_log;
        CacheParams {
            size_bytes: (1 << sets_log) * assoc * line_bytes,
            assoc,
            line_bytes,
        }
    })
}

fn mem_config() -> impl Strategy<Value = MemConfig> {
    (cache_params(), cache_params(), (0u32..200)).prop_map(|(icache, dcache, miss_penalty)| {
        MemConfig {
            icache,
            dcache,
            miss_penalty,
        }
    })
}

fn machine() -> impl Strategy<Value = MachineSpec> {
    (
        ((1u8..17), (1u8..9), (1u8..9), (0u8..5)),
        ((1u8..3), (1u8..3), (0u8..3), (0u8..3)),
        ((1u8..5), (1u8..5), (1u8..5), (1u8..5), (1u8..5)),
        ((0u8..4), (2u8..65), (1u8..9)),
        any::<u16>(),
    )
        .prop_map(
            |(
                (n_clusters, slots, alu, mul),
                (mem, br, send, recv),
                (lat_alu, lat_mul, lat_mem, lat_xfer, cmp_to_br),
                (taken_branch_penalty, n_gprs, n_bregs),
                tag,
            )| {
                MachineSpec {
                    name: format!("mach{tag}"),
                    config: MachineConfig {
                        n_clusters,
                        cluster: ClusterResources {
                            slots,
                            alu,
                            mul,
                            mem,
                            br,
                            send,
                            recv,
                        },
                        lat: Latencies {
                            alu: lat_alu,
                            mul: lat_mul,
                            mem: lat_mem,
                            xfer: lat_xfer,
                            cmp_to_br,
                        },
                        taken_branch_penalty,
                        n_gprs,
                        n_bregs,
                    },
                }
            },
        )
}

fn workload_ref() -> impl Strategy<Value = WorkloadRef> {
    prop_oneof![
        (0usize..vex_workloads::BENCHMARKS.len())
            .prop_map(|i| WorkloadRef::Builtin(vex_workloads::BENCHMARKS[i].name.to_string())),
        any::<u16>().prop_map(|n| WorkloadRef::Path(format!("workloads/k{n}.vexb"))),
        any::<u16>().prop_map(|n| WorkloadRef::Path(format!("progs/t{n}.vex"))),
    ]
}

fn mix() -> impl Strategy<Value = MixSpec> {
    (
        any::<u16>(),
        prop::collection::vec(workload_ref(), 1..5),
        any::<u64>(),
    )
        .prop_map(|(tag, members, seed)| MixSpec {
            name: format!("mx{tag}"),
            members,
            seed,
        })
}

fn serve_spec() -> impl Strategy<Value = Option<ServeSpec>> {
    prop_oneof![
        Just(None),
        (
            (any::<u32>(), (1u64..1 << 40), (0u64..1 << 40), any::<u32>()),
            ((0u64..1 << 30), (0u64..1 << 30), (1u32..1 << 16)),
        )
            .prop_map(
                |(
                    (workers, heartbeat_ms, point_timeout_ms, retries),
                    (backoff_base_ms, backoff_max_ms, quarantine),
                )| {
                    Some(ServeSpec {
                        workers,
                        heartbeat_ms,
                        point_timeout_ms,
                        retries,
                        backoff_base_ms,
                        backoff_max_ms,
                        quarantine,
                    })
                },
            ),
    ]
}

fn sweep_spec() -> impl Strategy<Value = SweepSpec> {
    (
        (
            any::<u16>(),
            (1u64..1 << 40),
            (1u64..1 << 40),
            (1u64..1 << 40),
            any::<u32>(),
            any::<u64>(),
        ),
        (
            prop::collection::vec(1u8..9, 1..4),
            prop::collection::vec(technique(), 1..9),
        ),
        (
            any::<bool>(),
            prop_oneof![Just(MemoryMode::Real), Just(MemoryMode::Perfect)],
            prop_oneof![
                Just(MtMode::Simultaneous),
                Just(MtMode::Interleaved),
                Just(MtMode::Blocked)
            ],
            any::<bool>(),
            (any::<bool>(), any::<u16>())
                .prop_map(|(some, n)| some.then(|| format!("trace_{n}.vext"))),
            (any::<bool>(), any::<u16>())
                .prop_map(|(some, n)| some.then(|| format!("journal_{n}.vexj"))),
        ),
        (mem_config(), serve_spec()),
        prop::collection::vec(machine(), 1..3),
        prop::collection::vec(mix(), 1..4),
    )
        .prop_map(
            |(
                (tag, inst_limit, timeslice, max_cycles, retries, seed),
                (threads, techniques),
                (renaming, memory, mt, respawn, trace, journal),
                (caches, serve),
                machines,
                mixes,
            )| {
                SweepSpec {
                    name: format!("spec{tag}"),
                    inst_limit,
                    timeslice,
                    max_cycles,
                    retries,
                    seed,
                    threads,
                    techniques,
                    renaming,
                    memory,
                    mt,
                    respawn,
                    trace,
                    journal,
                    serve,
                    caches,
                    machines,
                    mixes,
                }
            },
        )
}

// ---- properties ---------------------------------------------------

proptest! {
    #[test]
    fn parse_print_is_identity(spec in sweep_spec()) {
        let text = spec.print();
        let reparsed = SweepSpec::parse(&text)
            .unwrap_or_else(|e| panic!("canonical text must parse:\n{e}\n---\n{text}"));
        prop_assert_eq!(&reparsed, &spec, "round-trip mismatch for:\n{}", text);
        // And printing is a fixed point.
        prop_assert_eq!(reparsed.print(), text);
    }
}

// ---- fixed cases ---------------------------------------------------

#[test]
fn builders_round_trip() {
    for scale in [Scale::QUICK, Scale::DEFAULT, Scale::FULL, Scale::PAPER] {
        let spec = SweepSpec::paper_grid(scale);
        assert_eq!(SweepSpec::parse(&spec.print()).unwrap(), spec);
    }
}

#[test]
fn shorthand_and_sugar_resolve() {
    let spec = SweepSpec::parse(
        "scale = \"quick\"\n\
         techniques = \"ccsi as\"\n\
         threads = 4\n\
         mixes = \"mmhh\"\n",
    )
    .unwrap();
    assert_eq!(spec.inst_limit, Scale::QUICK.inst_limit);
    assert_eq!(spec.timeslice, Scale::QUICK.timeslice);
    assert_eq!(spec.threads, vec![4]);
    assert_eq!(
        spec.techniques,
        vec![Technique::ccsi(vex_sim::CommPolicy::AlwaysSplit)]
    );
    // mmhh is MIXES index 7: the seed keeps the full-grid offset.
    assert_eq!(spec.mixes[0].seed, vex_spec::DEFAULT_SEED + 7);
    assert_eq!(spec.mixes[0].members.len(), 4);
    // Sugar resolves to the same value as the canonical form.
    assert_eq!(SweepSpec::parse(&spec.print()).unwrap(), spec);
}

#[test]
fn explicit_budgets_override_scale_sugar() {
    let spec = SweepSpec::parse(
        "scale = \"full\"\n\
         inst_limit = 1234\n\
         mixes = [\"llll\"]\n",
    )
    .unwrap();
    assert_eq!(spec.inst_limit, 1234);
    assert_eq!(spec.timeslice, Scale::FULL.timeslice);
}

#[test]
fn split_cache_tables_round_trip() {
    let spec = SweepSpec::parse(
        "mixes = [\"llll\"]\n\
         [cache]\n\
         miss_penalty = 31\n\
         [icache]\n\
         size_bytes = 16384\n\
         assoc = 2\n\
         line_bytes = 64\n\
         [dcache]\n\
         size_bytes = 262144\n\
         assoc = 8\n\
         line_bytes = 32\n",
    )
    .unwrap();
    assert_ne!(spec.caches.icache, spec.caches.dcache);
    assert_eq!(spec.caches.miss_penalty, 31);
    assert_eq!(spec.caches.dcache.size_bytes, 256 * 1024);
    assert_eq!(SweepSpec::parse(&spec.print()).unwrap(), spec);
}

#[test]
fn limits_table_and_legacy_max_cycles() {
    // `[limits]` is the canonical home for execution-policy knobs.
    let spec = SweepSpec::parse(
        "mixes = [\"llll\"]\n\
         [limits]\n\
         max_cycles = 5000\n\
         retries = 3\n",
    )
    .unwrap();
    assert_eq!(spec.max_cycles, 5000);
    assert_eq!(spec.retries, 3);
    assert_eq!(SweepSpec::parse(&spec.print()).unwrap(), spec);

    // The original top-level spelling still works...
    let legacy = SweepSpec::parse("max_cycles = 77\nmixes = [\"llll\"]\n").unwrap();
    assert_eq!(legacy.max_cycles, 77);
    assert_eq!(legacy.retries, vex_spec::DEFAULT_RETRIES);

    // ...but giving both is ambiguous and rejected.
    let err = SweepSpec::parse("max_cycles = 1\nmixes = [\"llll\"]\n[limits]\nmax_cycles = 2\n")
        .unwrap_err();
    assert!(err.to_string().contains("both"), "{err}");
}

#[test]
fn comments_and_hex_are_accepted() {
    let spec = SweepSpec::parse(
        "# full-line comment\n\
         seed = 0x5EED_0000  # trailing comment\n\
         mixes = [\"hhhh\"]   # another\n",
    )
    .unwrap();
    assert_eq!(spec.seed, 0x5EED_0000);
    assert_eq!(spec.mixes[0].seed, 0x5EED_0000 + 8);
}

#[test]
fn partial_serve_table_fills_defaults() {
    let spec = SweepSpec::parse(
        "mixes = [\"llll\"]\n\
         [serve]\n\
         workers = 2\n\
         heartbeat_ms = 250\n",
    )
    .unwrap();
    let v = spec.serve.expect("[serve] parsed");
    assert_eq!(v.workers, 2);
    assert_eq!(v.heartbeat_ms, 250);
    let d = ServeSpec::default();
    assert_eq!(v.retries, d.retries);
    assert_eq!(v.quarantine, d.quarantine);
    assert_eq!(v.backoff_base_ms, d.backoff_base_ms);
    // A spec without the table has no serve config at all.
    assert_eq!(
        SweepSpec::parse("mixes = [\"llll\"]\n").unwrap().serve,
        None
    );
    // And the canonical form round-trips.
    assert_eq!(SweepSpec::parse(&spec.print()).unwrap(), spec);
}
