//! Snapshot tests for spec diagnostics: the full rendered message —
//! position, explanation, source line and caret — is asserted verbatim,
//! so any change to error output is a conscious one.

use vex_spec::SweepSpec;

/// Asserts the full rendered diagnostic for `src`.
#[track_caller]
fn snapshot(src: &str, expected: &str) {
    let err = SweepSpec::parse(src).expect_err("spec must not parse");
    let rendered = err.to_string();
    assert_eq!(
        rendered.trim_end(),
        expected.trim_end(),
        "\n--- rendered ---\n{rendered}\n--- expected ---\n{expected}"
    );
}

#[test]
fn too_many_clusters() {
    snapshot(
        "mixes = [\"llll\"]\n[[machine]]\nclusters = 32\n",
        "\
error at line 3:12: machine has 32 clusters but the simulator supports 1 to 16
  | clusters = 32
  |            ^^",
    );
}

#[test]
fn zero_alus_rejected() {
    snapshot(
        "mixes = [\"llll\"]\n[[machine]]\nalu = 0\n",
        "\
error at line 3:7: `alu` must be between 1 and 255, got 0
  | alu = 0
  |       ^",
    );
}

#[test]
fn non_power_of_two_cache() {
    snapshot(
        "mixes = [\"llll\"]\n[cache]\nsize_bytes = 96000\n",
        "\
error at line 3:14: cache of 96000 bytes with 4-way sets of 32-byte lines needs a power-of-two set count (4 x 32 x 2^k bytes)
  | size_bytes = 96000
  |              ^^^^^",
    );
}

#[test]
fn non_power_of_two_line() {
    snapshot(
        "mixes = [\"llll\"]\n[dcache]\nline_bytes = 48\n",
        "\
error at line 3:14: `line_bytes` must be a power of two, got 48
  | line_bytes = 48
  |              ^^",
    );
}

#[test]
fn unknown_technique() {
    snapshot(
        "techniques = [\"CSMT\", \"WARP9\"]\nmixes = [\"llll\"]\n",
        "\
error at line 1:23: unknown technique `WARP9` (CSMT, SMT, CCSI NS, CCSI AS, COSI NS, COSI AS, OOSI NS, OOSI AS)
  | techniques = [\"CSMT\", \"WARP9\"]
  |                       ^^^^^^^",
    );
}

#[test]
fn unknown_benchmark_in_mix() {
    snapshot(
        "[[mix]]\nname = \"bad\"\nmembers = [\"quake3\"]\n",
        "\
error at line 3:12: `quake3` is neither a built-in benchmark (mcf, bzip2, blowfish, gsmencode, g721encode, g721decode, cjpeg, djpeg, imgpipe, x264, idct, colorspace) nor a .vex/.vexb path
  | members = [\"quake3\"]
  |            ^^^^^^^^",
    );
}

#[test]
fn unknown_builtin_mix() {
    snapshot(
        "mixes = [\"llxx\"]\n",
        "\
error at line 1:10: unknown built-in mix `llxx` (llll, lmmh, mmmm, llmm, llmh, llhh, lmhh, mmhh, hhhh)
  | mixes = [\"llxx\"]
  |          ^^^^^^",
    );
}

#[test]
fn unknown_key() {
    snapshot(
        "turbo = true\nmixes = [\"llll\"]\n",
        "\
error at line 1:1: unknown key `turbo` in the top level
  | turbo = true
  | ^^^^^",
    );
}

#[test]
fn cache_entry_before_its_section_header() {
    // A section-schema key at the top level means the author forgot the
    // header: the diagnostic names the section instead of rejecting the
    // key generically (and the parser must never panic here).
    snapshot(
        "size_bytes = 131072\nmixes = [\"llll\"]\n",
        "\
error at line 1:1: `size_bytes` appears before its `[cache]` section header (add the header above it)
  | size_bytes = 131072
  | ^^^^^^^^^^",
    );
}

#[test]
fn machine_entry_before_its_section_header() {
    snapshot(
        "mixes = [\"llll\"]\nclusters = 2\n",
        "\
error at line 2:1: `clusters` appears before its `[[machine]]` section header (add the header above it)
  | clusters = 2
  | ^^^^^^^^",
    );
}

#[test]
fn mix_entry_before_its_section_header() {
    snapshot(
        "members = [\"idct\"]\nmixes = [\"llll\"]\n",
        "\
error at line 1:1: `members` appears before its `[[mix]]` section header (add the header above it)
  | members = [\"idct\"]
  | ^^^^^^^",
    );
}

#[test]
fn unknown_section() {
    snapshot(
        "mixes = [\"llll\"]\n[network]\nports = 2\n",
        "\
error at line 2:1: unknown table `[network]` (cache, icache, dcache, limits, serve)
  | [network]
  | ^^^^^^^^^",
    );
}

#[test]
fn duplicate_key() {
    snapshot(
        "seed = 1\nseed = 2\nmixes = [\"llll\"]\n",
        "\
error at line 2:1: duplicate key `seed`
  | seed = 2
  | ^^^^",
    );
}

#[test]
fn missing_members() {
    snapshot(
        "[[mix]]\nname = \"empty\"\n",
        "\
error at line 1:1: mix needs a `members` list (benchmark names or .vex/.vexb paths)
  | [[mix]]
  | ^^^^^^^",
    );
}

#[test]
fn no_workload_at_all() {
    snapshot(
        "name = \"hollow\"\n",
        "\
error at line 1:1: spec has no workload: add `mixes = [...]` or a `[[mix]]` table
  | name = \"hollow\"
  | ^^^^^^^^^^^^^^^",
    );
}

#[test]
fn bare_word_value() {
    snapshot(
        "memory = perfect\nmixes = [\"llll\"]\n",
        "\
error at line 1:10: bare word `perfect` (strings are double-quoted)
  | memory = perfect
  |          ^^^^^^^",
    );
}

#[test]
fn unterminated_array() {
    snapshot(
        "threads = [2, 4\nmixes = [\"llll\"]\n",
        "\
error at line 1:16: unterminated array (arrays are single-line)
  | threads = [2, 4
  |                ^",
    );
}

#[test]
fn bad_thread_count() {
    snapshot(
        "threads = [2, 0]\nmixes = [\"llll\"]\n",
        "\
error at line 1:15: thread count must be between 1 and 255, got 0
  | threads = [2, 0]
  |               ^",
    );
}

#[test]
fn missing_equals() {
    snapshot(
        "just some words\n",
        "\
error at line 1:1: expected `key = value` or a `[section]` header
  | just some words
  | ^^^^^^^^^^^^^^^",
    );
}
