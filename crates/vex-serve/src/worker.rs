//! The worker process: connects to a sweep server, pulls point
//! assignments, simulates them, and streams heartbeats from inside the
//! cycle loop so the supervisor can tell "still grinding" from "hung".
//!
//! A worker is deliberately stateless: everything it needs arrives in the
//! assignment (a canonical single-point spec), and everything it produces
//! leaves as a journal payload. Killing a worker at any instant loses at
//! most the in-flight point, which the server re-queues — that is the
//! whole fault-isolation contract.
//!
//! ## Fault injection (`VEX_WORKER_FAULT`)
//!
//! The supervision test harness drives workers into scripted misbehaviour
//! through the `VEX_WORKER_FAULT` environment variable (inherited from
//! the server, so `vex serve` tests can script the pool): a
//! semicolon-separated list of directives, each gated on a filesystem
//! marker so "once" means once across respawns:
//!
//! * `crash-once:<marker>` — the first worker to claim `<marker>`
//!   (atomic `create_new`) aborts before simulating its assignment.
//! * `hang-once:<marker>` — likewise, but sleeps forever without
//!   heartbeating (exercises the heartbeat reaper).
//! * `poison:<substr>:<times>:<counter>` — abort on any assignment whose
//!   label contains `<substr>`, up to `<times>` times (the count lives in
//!   `<counter>`); exercises retry budgets and quarantine.

use crate::proto::{parse_key, read_frame, split_message, write_frame};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use vex_experiments::jobs::key_of;
use vex_experiments::runner::ProgramLoader;
use vex_experiments::{panic_message, prepare_programs, JournalEntry};
use vex_sim::{run_prepared_observed, PreparedProgram};
use vex_spec::SweepSpec;

/// How often (in simulated cycles) the engine surfaces control to the
/// heartbeat hook. Cheap enough to be negligible, frequent enough that a
/// live worker never looks silent (the hook rate-limits actual sends).
const OBSERVE_EVERY_CYCLES: u64 = 50_000;

/// Runs the worker loop against the server at `addr` until the server
/// says `SHUTDOWN`.
pub fn worker_main(addr: &str, loader: Option<ProgramLoader<'_>>) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    stream.set_nodelay(true).ok();
    expect_ok(&mut stream, &format!("HELLO {}", std::process::id()))?;
    loop {
        let reply = request(&mut stream, "GET")?;
        let (head, body) = split_message(&reply);
        let mut parts = head.split(' ');
        match parts.next().unwrap_or("") {
            "ASSIGN" => {
                let key = parse_key(parts.next().ok_or("ASSIGN without a key")?)?;
                let zero_wall = parts.next() == Some("1");
                let heartbeat_ms: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(1000);
                let outcome = run_point(&stream, body, key, zero_wall, heartbeat_ms, loader);
                match outcome {
                    Ok(entry) => expect_ok(
                        &mut stream,
                        &format!("RESULT {key:016x}\n{}", entry.to_payload()),
                    )?,
                    Err(msg) => {
                        eprintln!(
                            "[vex worker {}] point {key:016x}: {msg}",
                            std::process::id()
                        );
                        expect_ok(&mut stream, &format!("FAIL {key:016x}\n{msg}"))?;
                    }
                }
            }
            "WAIT" => {
                let ms: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(50);
                std::thread::sleep(Duration::from_millis(ms));
            }
            "SHUTDOWN" => return Ok(()),
            other => return Err(format!("unexpected server reply `{other}`")),
        }
    }
}

/// One request/reply exchange.
fn request(stream: &mut TcpStream, text: &str) -> Result<String, String> {
    write_frame(stream, text).map_err(|e| format!("cannot send to the server: {e}"))?;
    read_frame(stream)
        .map_err(|e| format!("cannot read from the server: {e}"))?
        .ok_or_else(|| "server closed the connection".to_string())
}

/// A request whose only acceptable reply is `OK`.
fn expect_ok(stream: &mut TcpStream, text: &str) -> Result<(), String> {
    let reply = request(stream, text)?;
    if reply == "OK" {
        Ok(())
    } else {
        Err(format!(
            "server rejected `{}`: {reply}",
            split_message(text).0
        ))
    }
}

/// Simulates one assignment: parses the single-point spec, re-derives the
/// content-addressed key (refusing a mismatched assignment — the key is
/// the integrity check of the whole exchange), and runs the engine with
/// the heartbeat hook wired to the server connection.
fn run_point(
    stream: &TcpStream,
    spec_text: &str,
    key: u64,
    zero_wall: bool,
    heartbeat_ms: u64,
    loader: Option<ProgramLoader<'_>>,
) -> Result<JournalEntry, String> {
    let spec = SweepSpec::parse(spec_text).map_err(|e| format!("bad assignment spec: {e}"))?;
    let points = spec.expand();
    let [run] = points.as_slice() else {
        return Err(format!(
            "assignment expands to {} points, expected exactly 1",
            points.len()
        ));
    };
    let prepared = prepare_programs(points.as_slice(), loader)?;
    let computed = key_of(run, &prepared);
    if computed != key {
        return Err(format!(
            "key mismatch: assigned {key:016x}, recomputed {computed:016x}"
        ));
    }

    fault_gate(&run.label());

    let workload: Vec<PreparedProgram> = run
        .mix
        .members
        .iter()
        .map(|m| {
            prepared[&(run.machine_index, m.as_str().to_string())]
                .0
                .clone()
        })
        .collect();
    let cfg = run.to_sim_config();

    // Heartbeats ride the same connection as one-way frames; the hook
    // rate-limits to half the supervisor's interval so a live worker
    // always beats well inside the 5x timeout.
    let hb_stream = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the connection for heartbeats: {e}"))?;
    let min_gap = Duration::from_millis((heartbeat_ms / 2).max(1));
    let mut last_sent = Instant::now();
    let hook = Box::new(move |cycle: u64| {
        if last_sent.elapsed() >= min_gap {
            last_sent = Instant::now();
            let mut w = &hb_stream;
            let _ = write_frame(&mut w, &format!("HEARTBEAT {key:016x} {cycle}"));
        }
    });

    let started = Instant::now();
    let sim = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_prepared_observed(&cfg, &workload, OBSERVE_EVERY_CYCLES, hook)
    }));
    match sim {
        Ok((stats, stop)) => Ok(JournalEntry {
            key,
            label: run.label(),
            stop,
            wall_secs: if zero_wall {
                0.0
            } else {
                started.elapsed().as_secs_f64()
            },
            stats,
        }),
        Err(payload) => Err(format!("panicked: {}", panic_message(payload.as_ref()))),
    }
}

/// Applies `VEX_WORKER_FAULT` directives (see the module docs). May abort
/// or hang the process — that is the point.
fn fault_gate(label: &str) {
    let Ok(plan) = std::env::var("VEX_WORKER_FAULT") else {
        return;
    };
    for directive in plan.split(';').filter(|d| !d.is_empty()) {
        let parts: Vec<&str> = directive.split(':').collect();
        match parts.as_slice() {
            ["crash-once", marker] if claim_marker(marker) => {
                eprintln!("[vex worker {}] fault: crashing once", std::process::id());
                std::process::abort();
            }
            ["hang-once", marker] if claim_marker(marker) => {
                eprintln!("[vex worker {}] fault: hanging once", std::process::id());
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            ["poison", substr, times, counter] if label.contains(substr) => {
                let n: u32 = std::fs::read_to_string(counter)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(0);
                let limit: u32 = times.parse().unwrap_or(0);
                if n < limit {
                    let _ = std::fs::write(counter, (n + 1).to_string());
                    eprintln!(
                        "[vex worker {}] fault: poisoning `{label}` ({}/{limit})",
                        std::process::id(),
                        n + 1
                    );
                    std::process::abort();
                }
            }
            _ => {}
        }
    }
}

/// Atomically claims a once-only fault marker: exactly one worker across
/// all respawns wins the `create_new`.
fn claim_marker(path: &str) -> bool {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
        .is_ok()
}
