//! `vex-serve`: a fault-tolerant sweep service for the VEX simulator.
//!
//! Three roles, one wire protocol ([`proto`]):
//!
//! * **Server** ([`serve`]) — accepts [`SweepSpec`](vex_spec::SweepSpec)
//!   submissions over TCP, expands them into content-addressed point
//!   jobs, and fans the jobs out to a supervised pool of worker
//!   processes. Crashed, hung and timed-out workers are reaped and their
//!   points re-queued with exponential backoff; poison points are
//!   quarantined; results are journaled crash-safely and served from a
//!   content-addressed cache, so overlapping or repeated sweeps never
//!   recompute a point. SIGTERM drains gracefully.
//! * **Worker** ([`worker_main`]) — a stateless simulation process that
//!   pulls assignments and heartbeats from inside the engine's cycle
//!   loop.
//! * **Client** ([`submit`]) — submits a spec, waits, and reassembles a
//!   [`SweepOutcome`](vex_experiments::SweepOutcome) byte-identical to an
//!   uninterrupted in-process run.
//!
//! The crate is std-only: `std::net` TCP, OS threads and processes — no
//! async runtime, no external dependencies.

#![warn(missing_docs)]

pub mod proto;
pub mod server;
pub mod submit;
pub mod worker;

pub use server::{serve, ServeConfig};
pub use submit::{submit, Submission};
pub use worker::worker_main;
