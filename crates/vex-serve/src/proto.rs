//! Wire protocol of the sweep service: length-prefixed UTF-8 text frames
//! over TCP, one message per frame.
//!
//! ## Framing
//!
//! ```text
//! <len: u32 little-endian> <len bytes of UTF-8 text>
//! ```
//!
//! Length prefixes make every message self-delimiting regardless of its
//! content (submitted spec files and journal payloads are multi-line), and
//! a reader can always tell a short read from a complete frame — the same
//! property the on-disk journal gets from its `+<len> <crc>` headers. No
//! checksum here: TCP already covers the transport, and everything written
//! to disk goes through the checksummed journal format.
//!
//! ## Messages
//!
//! A message is the frame's text: the first line is the verb and its
//! space-separated arguments, everything after the first newline is the
//! body. The conversation is strict request/reply per connection — the
//! sender of a request reads exactly one reply — with one exception:
//! `HEARTBEAT` is one-way (a worker mid-simulation fires it from the
//! engine's heartbeat hook and immediately resumes the cycle loop).
//!
//! Worker → server: `HELLO <pid>`, `GET`, `HEARTBEAT <key> <cycle>`,
//! `RESULT <key>` + journal payload body, `FAIL <key>` + message body.
//! Server → worker: `OK`, `ASSIGN <key> <zero_wall> <heartbeat_ms>` +
//! single-point spec body, `WAIT <ms>`, `SHUTDOWN`.
//! Client → server: `SUBMIT` + spec body, `POLL` + key-per-line body,
//! `FETCH <key>`, `STATUS`, `DRAIN`.
//! Server → client: `ACCEPTED <total> <cached> <enqueued>`, `DRAINING`,
//! `ERROR <msg>`, `READY <done> <failed>`, `PENDING <done> <total>`,
//! `ENTRY` + payload body, `FAILED <attempts>` + message body, `UNKNOWN`.

use std::io::{self, Read, Write};

/// Upper bound on a frame's size (16 MiB). A submitted spec or a result
/// payload is kilobytes; anything larger is a corrupt or hostile stream
/// and is refused before allocating.
pub const MAX_FRAME: u32 = 16 << 20;

/// Writes one frame. The text's length must fit [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, text: &str) -> io::Result<()> {
    let len = text.len() as u32;
    debug_assert!(len <= MAX_FRAME);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF on the
/// length prefix boundary); an EOF mid-frame is an error — the peer died
/// mid-message.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "torn frame": only an EOF before
    // the first length byte is clean.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))
}

/// Splits a message into its verb line and body (empty when the message
/// is a single line).
pub fn split_message(text: &str) -> (&str, &str) {
    match text.split_once('\n') {
        Some((head, body)) => (head, body),
        None => (text, ""),
    }
}

/// Parses a 16-digit hex point key argument.
pub fn parse_key(arg: &str) -> Result<u64, String> {
    u64::from_str_radix(arg, 16).map_err(|_| format!("bad point key `{arg}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "HELLO 42").unwrap();
        write_frame(&mut buf, "RESULT 00000000deadbeef\nkey=...\nmulti\nline").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "HELLO 42");
        let msg = read_frame(&mut r).unwrap().unwrap();
        let (head, body) = split_message(&msg);
        assert_eq!(head, "RESULT 00000000deadbeef");
        assert_eq!(body, "key=...\nmulti\nline");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_header_and_torn_body_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "STATUS").unwrap();
        // Cut inside the next frame's header.
        buf.extend_from_slice(&[7, 0]);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(read_frame(&mut r).is_err());

        // Cut inside a frame's body.
        let mut buf = Vec::new();
        write_frame(&mut buf, "0123456789").unwrap();
        let mut r = &buf[..buf.len() - 3];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_is_refused_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = buf.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn single_line_message_has_empty_body() {
        let (head, body) = split_message("GET");
        assert_eq!(head, "GET");
        assert_eq!(body, "");
    }

    #[test]
    fn keys_parse_back() {
        assert_eq!(parse_key("00000000deadbeef").unwrap(), 0xdead_beef);
        assert!(parse_key("xyz").is_err());
    }
}
