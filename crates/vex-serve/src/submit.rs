//! The client side of the sweep service: submits a spec, polls until
//! every point is terminal, fetches the results and reassembles a
//! [`SweepOutcome`] indistinguishable from an in-process run.
//!
//! The client expands the spec *locally* to derive the point keys it will
//! poll and fetch — the keys are content-addressed, so the client and
//! server independently agree on the identity of every point without
//! exchanging anything but the spec text.

use crate::proto::{read_frame, split_message, write_frame};
use std::net::TcpStream;
use std::time::Duration;
use vex_experiments::runner::ProgramLoader;
use vex_experiments::{
    spec_point_keys, JournalEntry, PointError, PointFailure, PointResult, SweepOutcome,
};
use vex_spec::SweepSpec;

/// What [`submit`] brings back: the reassembled outcome plus the server's
/// accounting of how much work the submission actually caused.
pub struct Submission {
    /// Results and errors, in spec expansion order — byte-identical JSON
    /// to an uninterrupted in-process sweep of the same spec.
    pub outcome: SweepOutcome,
    /// Points in the spec.
    pub total: usize,
    /// Points served straight from the content-addressed cache.
    pub cached: usize,
    /// Points newly scheduled by this submission (0 on a resubmission of
    /// a completed sweep: the cache answers everything).
    pub enqueued: usize,
}

/// Submits `spec_text` to the server at `addr` and blocks until every
/// point is terminal, polling every `poll_ms` milliseconds.
pub fn submit(
    addr: &str,
    spec_text: &str,
    loader: Option<ProgramLoader<'_>>,
    poll_ms: u64,
) -> Result<Submission, String> {
    let spec = SweepSpec::parse(spec_text).map_err(|e| format!("bad spec: {e}"))?;
    let points = spec_point_keys(&spec, loader)?;

    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to `{addr}`: {e}"))?;
    stream.set_nodelay(true).ok();

    let reply = request(&mut stream, &format!("SUBMIT\n{spec_text}"))?;
    let (head, _) = split_message(&reply);
    let mut parts = head.split(' ');
    let (total, cached, enqueued) = match parts.next().unwrap_or("") {
        "ACCEPTED" => {
            let mut next = || {
                parts
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| format!("malformed ACCEPTED reply `{head}`"))
            };
            (next()?, next()?, next()?)
        }
        "DRAINING" => return Err("server is draining; not accepting new submissions".to_string()),
        "ERROR" => return Err(format!("server rejected the spec: {}", &head[6..])),
        other => return Err(format!("unexpected reply to SUBMIT: `{other}`")),
    };
    if total != points.len() {
        return Err(format!(
            "server expanded {total} points, client expanded {} — spec disagreement",
            points.len()
        ));
    }

    // Poll until every key is terminal.
    let poll_body: String = points
        .iter()
        .map(|(_, key)| format!("{key:016x}\n"))
        .collect();
    let poll_msg = format!("POLL\n{poll_body}");
    loop {
        let reply = request(&mut stream, &poll_msg)?;
        let word = reply.split(' ').next().unwrap_or("");
        match word {
            "READY" => break,
            "PENDING" => std::thread::sleep(Duration::from_millis(poll_ms)),
            _ => return Err(format!("unexpected reply to POLL: `{reply}`")),
        }
    }

    // Fetch every point, preserving expansion order so the assembled
    // outcome is byte-identical to an in-process run.
    let mut results: Vec<PointResult> = Vec::with_capacity(points.len());
    let mut errors: Vec<PointError> = Vec::new();
    for (run, key) in points {
        let reply = request(&mut stream, &format!("FETCH {key:016x}"))?;
        let (head, body) = split_message(&reply);
        let mut parts = head.split(' ');
        match parts.next().unwrap_or("") {
            "ENTRY" => {
                let entry = JournalEntry::from_payload(body)?;
                if entry.key != key {
                    return Err(format!(
                        "server returned entry {:016x} for point {key:016x}",
                        entry.key
                    ));
                }
                results.push(PointResult {
                    run,
                    stats: entry.stats,
                    stop: entry.stop,
                    wall_secs: entry.wall_secs,
                    key,
                    resumed: false,
                    attempts: 1,
                });
            }
            "FAILED" => {
                let attempts: u32 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                errors.push(PointError {
                    key,
                    label: run.label(),
                    attempts,
                    cause: PointFailure::Failed(body.trim_end().to_string()),
                });
            }
            other => {
                return Err(format!(
                    "point {key:016x} is `{other}` after the server reported READY"
                ))
            }
        }
    }

    Ok(Submission {
        outcome: SweepOutcome {
            spec,
            points: results,
            errors,
        },
        total,
        cached,
        enqueued,
    })
}

/// One request/reply exchange.
fn request(stream: &mut TcpStream, text: &str) -> Result<String, String> {
    write_frame(stream, text).map_err(|e| format!("cannot send to the server: {e}"))?;
    read_frame(stream)
        .map_err(|e| format!("cannot read from the server: {e}"))?
        .ok_or_else(|| "server closed the connection".to_string())
}
