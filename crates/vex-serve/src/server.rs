//! The sweep server: accepts spec submissions over TCP, expands them into
//! content-addressed point jobs, fans the jobs out to a supervised pool of
//! worker *processes*, and serves the results back.
//!
//! ## Supervision model
//!
//! Workers are separate OS processes (fault isolation the in-process
//! runner cannot give: a segfault, OOM kill or runaway loop in one point
//! cannot take the sweep down). The server supervises them three ways:
//!
//! * **Exit reaping** — a worker process that dies (crash, kill, abort)
//!   has its in-flight point re-queued with crash accounting.
//! * **Heartbeats** — workers report liveness from inside the simulator's
//!   cycle loop (see `vex_sim::run_prepared_observed`); a worker silent
//!   for 5× the heartbeat interval is presumed hung, killed, and its
//!   point re-queued.
//! * **Point timeout** — an optional wall-clock ceiling per assignment
//!   (`[serve] point_timeout_ms`), layered on top of the simulated-cycle
//!   watchdog (`[limits] max_cycles`) that the point itself carries.
//!
//! Re-queued points wait out an exponential-backoff-with-jitter delay
//! ([`BackoffPolicy`]) and are retried up to the budget; a point whose
//! workers keep *crashing* is quarantined after `[serve] quarantine`
//! crashes — a poison point must not eat the pool.
//!
//! ## Durability
//!
//! Results live in a content-addressed cache keyed by the point key, and
//! — when a journal path is configured — every result is appended to a
//! crash-safe VEXJ journal (fsynced before the worker's `RESULT` is
//! acknowledged) and every submission to a `<journal>.subs` sidecar.
//! `--resume` replays both: completed points come back byte-identically
//! without re-simulation, and interrupted submissions re-enqueue their
//! missing points.
//!
//! ## Drain
//!
//! SIGTERM/SIGINT (or the `DRAIN` verb) puts the server into drain mode:
//! new submissions are refused, accepted work is finished and journaled,
//! idle workers are told to `SHUTDOWN`, and the server exits 0.

use crate::proto::{parse_key, read_frame, split_message, write_frame};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use vex_experiments::journal::crc32;
use vex_experiments::runner::ProgramLoader;
use vex_experiments::{
    single_point_spec, spec_point_keys, sync_parent_dir, BackoffPolicy, Journal, JournalEntry,
};
use vex_spec::{ServeSpec, SweepSpec};

/// Everything a [`serve`] call needs to know.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// Worker pool size (0 = one per available core).
    pub workers: u32,
    /// Supervision policy: heartbeat interval, timeouts, retry budget,
    /// backoff, quarantine threshold.
    pub policy: ServeSpec,
    /// Result journal path; also enables the `<path>.subs` submission log.
    pub journal: Option<String>,
    /// Replay the journal and submission log instead of truncating them.
    pub resume: bool,
    /// Report every `wall_secs` as zero, making results byte-reproducible
    /// across fault schedules (the crash-equivalence tests diff them).
    pub zero_wall: bool,
    /// Write the actual listen address here once bound (test support:
    /// lets a harness bind port 0 and discover the port).
    pub port_file: Option<String>,
    /// Command to spawn one worker (`--connect ADDR` is appended). None
    /// means no pool is spawned — only external `vex worker` processes
    /// serve the queue.
    pub worker_cmd: Option<Vec<String>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            workers: 0,
            policy: ServeSpec::default(),
            journal: None,
            resume: false,
            zero_wall: false,
            port_file: None,
            worker_cmd: None,
        }
    }
}

// ---- signals ------------------------------------------------------

static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Routes SIGTERM/SIGINT into a drain request. Std has no signal API, but
/// `signal(2)` is in libc, which every linux-gnu/macOS binary links.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_sig: i32) {
        DRAIN_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_term as *const () as usize); // SIGTERM
        signal(2, on_term as *const () as usize); // SIGINT
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// SIGKILLs a process by id (used to reap hung workers; external workers
/// on the same host are covered too, not just our children).
#[cfg(unix)]
fn kill_process(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(pid as i32, 9);
    }
}

#[cfg(not(unix))]
fn kill_process(_pid: u32) {}

// ---- submission log -----------------------------------------------

const SUBS_MAGIC: &str = "VEXS 1\n";

/// Append-only log of submitted spec texts, in the journal's framed
/// format (`+<len:hex> <crc32>\n<payload>\n` after a magic header), so a
/// server killed mid-sweep can re-enqueue what it had accepted. Torn
/// tails are truncated on open, exactly like the result journal.
#[derive(Debug)]
struct SubsLog {
    path: PathBuf,
    file: File,
}

impl SubsLog {
    /// Opens (resuming) or creates the log; returns prior submissions.
    fn open(path: &Path, resume: bool) -> Result<(SubsLog, Vec<String>), String> {
        if !resume || !path.exists() {
            let mut file = File::create(path)
                .map_err(|e| format!("cannot create submission log `{}`: {e}", path.display()))?;
            file.write_all(SUBS_MAGIC.as_bytes())
                .and_then(|_| file.sync_data())
                .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
            sync_parent_dir(path)?;
            return Ok((
                SubsLog {
                    path: path.to_path_buf(),
                    file,
                },
                Vec::new(),
            ));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot open submission log `{}`: {e}", path.display()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
        if !bytes.starts_with(SUBS_MAGIC.as_bytes()) {
            // A torn first write is ours; anything else is not our file.
            if !SUBS_MAGIC.as_bytes().starts_with(&bytes) {
                return Err(format!(
                    "`{}` is not a vex serve submission log (missing `VEXS 1` header)",
                    path.display()
                ));
            }
            drop(file);
            return SubsLog::open(path, false);
        }
        let mut texts = Vec::new();
        let mut pos = SUBS_MAGIC.len();
        while let Some((payload, advance)) = parse_subs_frame(&bytes[pos..]) {
            texts.push(payload.to_string());
            pos += advance;
        }
        file.set_len(pos as u64)
            .and_then(|_| file.seek(SeekFrom::End(0)))
            .and_then(|_| file.sync_data())
            .map_err(|e| format!("cannot truncate `{}`: {e}", path.display()))?;
        Ok((
            SubsLog {
                path: path.to_path_buf(),
                file,
            },
            texts,
        ))
    }

    /// Appends one submission and syncs before returning.
    fn append(&mut self, text: &str) -> Result<(), String> {
        let record = format!("+{:x} {:08x}\n{text}\n", text.len(), crc32(text.as_bytes()));
        self.file
            .write_all(record.as_bytes())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("cannot append to `{}`: {e}", self.path.display()))
    }
}

/// One `+<len> <crc>\n<payload>\n` frame off the front of `rest`, or
/// `None` for an incomplete/garbled tail.
fn parse_subs_frame(rest: &[u8]) -> Option<(&str, usize)> {
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&rest[..nl]).ok()?;
    let (len_hex, crc_hex) = header.strip_prefix('+')?.split_once(' ')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    let body_start = nl + 1;
    let body_end = body_start.checked_add(len)?;
    if body_end >= rest.len() || rest[body_end] != b'\n' {
        return None;
    }
    let payload = &rest[body_start..body_end];
    if crc32(payload) != crc {
        return None;
    }
    Some((std::str::from_utf8(payload).ok()?, body_end + 1))
}

// ---- task state ---------------------------------------------------

#[derive(Debug)]
enum TaskState {
    /// Waiting for a worker (possibly not before `ready_at`).
    Queued,
    /// Assigned to worker `pid`.
    Running {
        pid: u32,
        since: Instant,
        last_hb: Instant,
    },
    /// Result is in the cache.
    Done,
    /// Out of retries or quarantined.
    Failed { msg: String },
}

#[derive(Debug)]
struct Task {
    label: String,
    /// The assignment wire text: a canonical single-point spec.
    assign: String,
    /// Times this point has been assigned (1 = first try).
    attempts: u32,
    /// Times a worker died (crash/hang/timeout) while holding it.
    crashes: u32,
    /// Earliest next assignment (backoff).
    ready_at: Instant,
    state: TaskState,
}

struct State {
    tasks: HashMap<u64, Task>,
    /// Stable iteration order (first-enqueued first).
    order: Vec<u64>,
    /// Content-addressed result cache; also fed by journal replay.
    cache: HashMap<u64, JournalEntry>,
    draining: bool,
}

impl State {
    fn all_terminal(&self) -> bool {
        self.tasks
            .values()
            .all(|t| matches!(t.state, TaskState::Done | TaskState::Failed { .. }))
    }
}

struct Shared<'a> {
    cfg: &'a ServeConfig,
    loader: Option<ProgramLoader<'a>>,
    backoff: BackoffPolicy,
    state: Mutex<State>,
    journal: Mutex<Option<Journal>>,
    subs: Mutex<Option<SubsLog>>,
    /// Clones of every accepted connection, so drain can unblock their
    /// reader threads.
    conns: Mutex<Vec<TcpStream>>,
    closed: AtomicBool,
}

/// Mutex lock that shrugs off poisoning: the protected data is only ever
/// whole values.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const DRAINING_MSG: &str = "server is draining; not accepting new submissions";

// ---- submission / queue -------------------------------------------

/// Expands a submitted spec and enqueues every point not already cached
/// or pending. Returns `(total, cached, newly_enqueued)`.
fn enqueue_spec(
    shared: &Shared<'_>,
    text: &str,
    record: bool,
) -> Result<(usize, usize, usize), String> {
    let spec = SweepSpec::parse(text).map_err(|e| format!("bad spec: {e}"))?;
    // Expansion compiles the member programs (to derive the point keys);
    // do it outside the state lock.
    let points = spec_point_keys(&spec, shared.loader)?;

    let mut st = lock(&shared.state);
    if st.draining {
        return Err(DRAINING_MSG.to_string());
    }
    let now = Instant::now();
    let (mut cached, mut enqueued) = (0, 0);
    for (run, key) in &points {
        if st.cache.contains_key(key) {
            cached += 1;
            continue;
        }
        match st.tasks.get_mut(key) {
            Some(t) => {
                // A fresh submission grants a failed point a fresh budget.
                if matches!(t.state, TaskState::Failed { .. }) {
                    t.attempts = 0;
                    t.crashes = 0;
                    t.ready_at = now;
                    t.state = TaskState::Queued;
                    enqueued += 1;
                }
                // Queued/Running points are shared with the submission
                // that created them.
            }
            None => {
                st.tasks.insert(
                    *key,
                    Task {
                        label: run.label(),
                        assign: single_point_spec(run).print(),
                        attempts: 0,
                        crashes: 0,
                        ready_at: now,
                        state: TaskState::Queued,
                    },
                );
                st.order.push(*key);
                enqueued += 1;
            }
        }
    }
    drop(st);
    if record {
        if let Some(s) = lock(&shared.subs).as_mut() {
            s.append(text)?;
        }
    }
    Ok((points.len(), cached, enqueued))
}

/// Picks the next ready task for worker `pid`, or tells it to wait or
/// shut down.
fn next_assignment(shared: &Shared<'_>, pid: u32) -> String {
    let mut st = lock(&shared.state);
    let now = Instant::now();
    let mut soonest: Option<Duration> = None;
    for i in 0..st.order.len() {
        let key = st.order[i];
        let Some(t) = st.tasks.get_mut(&key) else {
            continue;
        };
        if !matches!(t.state, TaskState::Queued) {
            continue;
        }
        if t.ready_at <= now {
            t.attempts += 1;
            t.state = TaskState::Running {
                pid,
                since: now,
                last_hb: now,
            };
            return format!(
                "ASSIGN {key:016x} {} {}\n{}",
                if shared.cfg.zero_wall { 1 } else { 0 },
                shared.cfg.policy.heartbeat_ms,
                t.assign
            );
        }
        let until = t.ready_at - now;
        soonest = Some(soonest.map_or(until, |s| s.min(until)));
    }
    if st.draining && st.all_terminal() {
        return "SHUTDOWN".to_string();
    }
    let ms = soonest
        .map(|d| d.as_millis().clamp(5, 200) as u64)
        .unwrap_or(50);
    format!("WAIT {ms}")
}

/// Journals and caches a completed point. The journal append (fsync
/// included) happens before the caller acknowledges the worker, so an
/// acknowledged result is durable.
fn handle_result(shared: &Shared<'_>, key: u64, payload: &str) -> Result<(), String> {
    let entry = JournalEntry::from_payload(payload)?;
    if entry.key != key {
        return Err(format!(
            "result key {:016x} does not match claimed key {key:016x}",
            entry.key
        ));
    }
    if let Some(j) = lock(&shared.journal).as_mut() {
        j.append(&entry)?;
    }
    let mut st = lock(&shared.state);
    st.cache.insert(key, entry);
    if let Some(t) = st.tasks.get_mut(&key) {
        t.state = TaskState::Done;
    }
    Ok(())
}

/// A worker reported a clean per-point failure (simulation error, bad
/// assignment): retry within the budget, no crash accounting.
fn handle_fail(shared: &Shared<'_>, key: u64, msg: &str) {
    let policy = shared.cfg.policy;
    let mut st = lock(&shared.state);
    if let Some(t) = st.tasks.get_mut(&key) {
        if matches!(t.state, TaskState::Running { .. }) {
            if t.attempts > policy.retries {
                t.state = TaskState::Failed {
                    msg: format!("failed: {msg} (after {} attempts)", t.attempts),
                };
            } else {
                let delay = shared.backoff.delay_ms(key, t.attempts + 1);
                t.ready_at = Instant::now() + Duration::from_millis(delay);
                t.state = TaskState::Queued;
            }
        }
    }
}

/// Crash accounting for one task whose worker died while holding it:
/// quarantine poison points, fail exhausted budgets, otherwise re-queue
/// behind the backoff delay.
fn task_crashed(t: &mut Task, key: u64, policy: &ServeSpec, backoff: &BackoffPolicy, why: &str) {
    t.crashes += 1;
    if t.crashes >= policy.quarantine {
        t.state = TaskState::Failed {
            msg: format!(
                "quarantined as a poison point: {} worker crashes ({why})",
                t.crashes
            ),
        };
    } else if t.attempts > policy.retries {
        t.state = TaskState::Failed {
            msg: format!("{why} (after {} attempts)", t.attempts),
        };
    } else {
        let delay = backoff.delay_ms(key, t.attempts + 1);
        t.ready_at = Instant::now() + Duration::from_millis(delay);
        t.state = TaskState::Queued;
    }
}

/// Re-queues everything a dead worker was holding. Idempotent: a pid with
/// no running tasks is a no-op (the reap may race the timeout path).
fn worker_died(shared: &Shared<'_>, pid: u32, why: &str) {
    let policy = shared.cfg.policy;
    let mut st = lock(&shared.state);
    let keys: Vec<u64> = st
        .tasks
        .iter()
        .filter(|(_, t)| matches!(t.state, TaskState::Running { pid: p, .. } if p == pid))
        .map(|(k, _)| *k)
        .collect();
    for key in keys {
        let t = st.tasks.get_mut(&key).expect("key from the same map");
        task_crashed(t, key, &policy, &shared.backoff, why);
        eprintln!(
            "[vex serve] worker {pid} lost point {} ({why}); {}",
            t.label,
            match &t.state {
                TaskState::Queued => "re-queued".to_string(),
                TaskState::Failed { msg } => msg.clone(),
                _ => unreachable!("crash leaves a task queued or failed"),
            }
        );
    }
}

// ---- status / fetch / poll ----------------------------------------

fn status_reply(shared: &Shared<'_>) -> String {
    use std::fmt::Write as _;
    let st = lock(&shared.state);
    let (mut q, mut r, mut d, mut f) = (0, 0, 0, 0);
    for t in st.tasks.values() {
        match t.state {
            TaskState::Queued => q += 1,
            TaskState::Running { .. } => r += 1,
            TaskState::Done => d += 1,
            TaskState::Failed { .. } => f += 1,
        }
    }
    let mut out = format!(
        "tasks={} queued={q} running={r} done={d} failed={f} draining={}",
        st.tasks.len(),
        st.draining as u8
    );
    for key in &st.order {
        let Some(t) = st.tasks.get(key) else { continue };
        let state = match &t.state {
            TaskState::Queued => "queued",
            TaskState::Running { .. } => "running",
            TaskState::Done => "done",
            TaskState::Failed { .. } => "failed",
        };
        let _ = write!(
            out,
            "\ntask {key:016x} {state} attempts={} crashes={} label={}",
            t.attempts, t.crashes, t.label
        );
    }
    out
}

fn poll_reply(shared: &Shared<'_>, body: &str) -> String {
    let st = lock(&shared.state);
    let (mut done, mut failed, mut total) = (0usize, 0usize, 0usize);
    for line in body.lines().filter(|l| !l.is_empty()) {
        total += 1;
        match parse_key(line) {
            Ok(key) if st.cache.contains_key(&key) => done += 1,
            Ok(key)
                if st
                    .tasks
                    .get(&key)
                    .is_some_and(|t| matches!(t.state, TaskState::Failed { .. })) =>
            {
                failed += 1
            }
            _ => {}
        }
    }
    if done + failed == total {
        format!("READY {done} {failed}")
    } else {
        format!("PENDING {} {total}", done + failed)
    }
}

fn fetch_reply(shared: &Shared<'_>, key: u64) -> String {
    let st = lock(&shared.state);
    if let Some(entry) = st.cache.get(&key) {
        return format!("ENTRY\n{}", entry.to_payload());
    }
    match st.tasks.get(&key) {
        Some(t) => match &t.state {
            TaskState::Failed { msg } => format!("FAILED {}\n{msg}", t.attempts),
            _ => "PENDING".to_string(),
        },
        None => "UNKNOWN".to_string(),
    }
}

// ---- connection handling ------------------------------------------

fn handle_conn(shared: &Shared<'_>, mut stream: TcpStream) {
    let mut peer_pid: u32 = 0;
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        // Clean disconnect, torn frame, or drain-time shutdown: the
        // peer is gone either way. In-flight work it held is covered
        // by process supervision, not connection state.
        let Ok(Some(msg)) = read_frame(&mut stream) else {
            return;
        };
        let (head, body) = split_message(&msg);
        let mut parts = head.split(' ');
        let verb = parts.next().unwrap_or("");
        let reply: Option<String> = match verb {
            "HELLO" => {
                peer_pid = parts.next().and_then(|p| p.parse().ok()).unwrap_or(0);
                Some("OK".to_string())
            }
            "GET" => Some(next_assignment(shared, peer_pid)),
            "HEARTBEAT" => {
                // One-way: refresh the liveness stamp if this worker
                // still holds the point (a reaped worker's stale beats
                // must not refresh a reassigned task).
                if let Ok(key) = parts.next().map_or(Err(String::new()), parse_key) {
                    let mut st = lock(&shared.state);
                    if let Some(t) = st.tasks.get_mut(&key) {
                        if let TaskState::Running { pid, last_hb, .. } = &mut t.state {
                            if *pid == peer_pid {
                                *last_hb = Instant::now();
                            }
                        }
                    }
                }
                None
            }
            "RESULT" => Some(match parts.next().map_or(Err(String::new()), parse_key) {
                Ok(key) => match handle_result(shared, key, body) {
                    Ok(()) => "OK".to_string(),
                    Err(e) => format!("ERROR {}", e.replace('\n', " ")),
                },
                Err(e) => format!("ERROR {e}"),
            }),
            "FAIL" => Some(match parts.next().map_or(Err(String::new()), parse_key) {
                Ok(key) => {
                    handle_fail(shared, key, body.trim_end());
                    "OK".to_string()
                }
                Err(e) => format!("ERROR {e}"),
            }),
            "SUBMIT" => Some(match enqueue_spec(shared, body, true) {
                Ok((total, cached, enqueued)) => {
                    eprintln!(
                        "[vex serve] submission: {total} points ({cached} cached, \
                         {enqueued} newly scheduled)"
                    );
                    format!("ACCEPTED {total} {cached} {enqueued}")
                }
                Err(e) if e == DRAINING_MSG => "DRAINING".to_string(),
                Err(e) => format!("ERROR {}", e.replace('\n', " ")),
            }),
            "POLL" => Some(poll_reply(shared, body)),
            "FETCH" => Some(match parts.next().map_or(Err(String::new()), parse_key) {
                Ok(key) => fetch_reply(shared, key),
                Err(e) => format!("ERROR {e}"),
            }),
            "STATUS" => Some(status_reply(shared)),
            "DRAIN" => {
                DRAIN_REQUESTED.store(true, Ordering::SeqCst);
                Some("OK".to_string())
            }
            other => Some(format!("ERROR unknown verb `{other}`")),
        };
        if let Some(reply) = reply {
            if write_frame(&mut stream, &reply).is_err() {
                return;
            }
        }
    }
}

// ---- supervision --------------------------------------------------

fn spawn_worker(cmd: &[String], addr: &str) -> Result<Child, String> {
    Command::new(&cmd[0])
        .args(&cmd[1..])
        .arg("--connect")
        .arg(addr)
        .spawn()
        .map_err(|e| format!("cannot spawn worker `{}`: {e}", cmd[0]))
}

/// One supervisor pass: reap dead children, kill hung/overtime workers,
/// and keep the pool at strength while not draining.
fn supervise(
    shared: &Shared<'_>,
    children: &mut Vec<Child>,
    addr: &str,
    pool_size: usize,
    draining: bool,
) {
    // Reap exited workers and re-queue what they held.
    children.retain_mut(|c| match c.try_wait() {
        Ok(Some(status)) => {
            worker_died(shared, c.id(), &format!("worker exited ({status})"));
            false
        }
        Ok(None) => true,
        Err(_) => true,
    });

    // Heartbeat / point-timeout supervision.
    let policy = shared.cfg.policy;
    let hb_timeout = Duration::from_millis(policy.heartbeat_ms.saturating_mul(5).max(200));
    let now = Instant::now();
    let mut to_kill: Vec<u32> = Vec::new();
    {
        let mut st = lock(&shared.state);
        let keys: Vec<u64> = st.order.clone();
        for key in keys {
            let Some(t) = st.tasks.get_mut(&key) else {
                continue;
            };
            let TaskState::Running {
                pid,
                since,
                last_hb,
            } = t.state
            else {
                continue;
            };
            let hung = now.duration_since(last_hb) > hb_timeout;
            let overtime = policy.point_timeout_ms > 0
                && now.duration_since(since) > Duration::from_millis(policy.point_timeout_ms);
            if hung || overtime {
                let why = if hung {
                    format!(
                        "no heartbeat for {}ms",
                        now.duration_since(last_hb).as_millis()
                    )
                } else {
                    format!("point exceeded {}ms wall clock", policy.point_timeout_ms)
                };
                eprintln!(
                    "[vex serve] reaping worker {pid} holding {}: {why}",
                    t.label
                );
                task_crashed(t, key, &policy, &shared.backoff, &why);
                to_kill.push(pid);
            }
        }
    }
    for pid in to_kill {
        kill_process(pid);
        // The child reap on a later pass removes it from the pool; its
        // tasks were already re-queued above, so `worker_died` then
        // finds nothing (idempotent by design).
    }

    // Keep the pool at strength.
    if !draining {
        if let Some(cmd) = &shared.cfg.worker_cmd {
            while children.len() < pool_size {
                match spawn_worker(cmd, addr) {
                    Ok(c) => children.push(c),
                    Err(e) => {
                        eprintln!("[vex serve] {e}");
                        break;
                    }
                }
            }
        }
    }
}

// ---- the server ---------------------------------------------------

/// Runs the sweep service until drained (SIGTERM/SIGINT or the `DRAIN`
/// verb). Returns once every accepted point is terminal, the journal is
/// synced, and the worker pool has exited.
pub fn serve(cfg: &ServeConfig, loader: Option<ProgramLoader<'_>>) -> Result<(), String> {
    DRAIN_REQUESTED.store(false, Ordering::SeqCst);
    install_signal_handlers();

    let listener =
        TcpListener::bind(&cfg.listen).map_err(|e| format!("cannot bind `{}`: {e}", cfg.listen))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set the listener nonblocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read the bound address: {e}"))?
        .to_string();
    if let Some(pf) = &cfg.port_file {
        // Write-then-rename so a polling test never reads a half-written
        // address.
        let tmp = format!("{pf}.tmp");
        fs::write(&tmp, &addr)
            .and_then(|_| fs::rename(&tmp, pf))
            .map_err(|e| format!("cannot write port file `{pf}`: {e}"))?;
    }
    eprintln!("[vex serve] listening on {addr}");

    // Durable state: the result journal feeds the cache, the submission
    // log re-enqueues interrupted sweeps.
    let mut cache: HashMap<u64, JournalEntry> = HashMap::new();
    let journal = match &cfg.journal {
        Some(p) if cfg.resume => {
            let (j, entries, report) = Journal::open_resume(Path::new(p))?;
            eprintln!(
                "[vex serve] journal `{p}`: replayed {} completed point(s){}",
                entries.len(),
                if report.dropped_bytes > 0 {
                    format!(" (dropped a torn {}-byte tail)", report.dropped_bytes)
                } else {
                    String::new()
                }
            );
            for e in entries {
                cache.insert(e.key, e);
            }
            Some(j)
        }
        Some(p) => Some(Journal::create(Path::new(p))?),
        None => None,
    };
    let (subs, prior) = match &cfg.journal {
        Some(p) => {
            let (s, texts) = SubsLog::open(Path::new(&format!("{p}.subs")), cfg.resume)?;
            (Some(s), texts)
        }
        None => (None, Vec::new()),
    };

    let shared = Shared {
        cfg,
        loader,
        backoff: BackoffPolicy {
            base_ms: cfg.policy.backoff_base_ms,
            max_ms: cfg.policy.backoff_max_ms,
            jitter: true,
        },
        state: Mutex::new(State {
            tasks: HashMap::new(),
            order: Vec::new(),
            cache,
            draining: false,
        }),
        journal: Mutex::new(journal),
        subs: Mutex::new(subs),
        conns: Mutex::new(Vec::new()),
        closed: AtomicBool::new(false),
    };

    // Re-enqueue interrupted submissions before accepting new ones: the
    // cache short-circuits every point the journal already has.
    for text in &prior {
        match enqueue_spec(&shared, text, false) {
            Ok((total, cached, enqueued)) => eprintln!(
                "[vex serve] resumed submission: {total} points \
                 ({cached} already journaled, {enqueued} re-enqueued)"
            ),
            Err(e) => eprintln!("[vex serve] dropping unreplayable submission: {e}"),
        }
    }

    let pool_size = if cfg.worker_cmd.is_none() {
        0
    } else if cfg.workers == 0 {
        vex_experiments::default_workers()
    } else {
        cfg.workers as usize
    };

    let mut children: Vec<Child> = Vec::new();
    let served = std::thread::scope(|s| -> Result<(), String> {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true).ok();
                    if let Ok(clone) = stream.try_clone() {
                        lock(&shared.conns).push(clone);
                    }
                    let shared = &shared;
                    s.spawn(move || handle_conn(shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => return Err(format!("accept failed: {e}")),
            }

            if DRAIN_REQUESTED.load(Ordering::SeqCst) {
                let mut st = lock(&shared.state);
                if !st.draining {
                    st.draining = true;
                    eprintln!(
                        "[vex serve] drain requested: finishing {} in-flight point(s), \
                         refusing new submissions",
                        st.tasks
                            .values()
                            .filter(|t| !matches!(
                                t.state,
                                TaskState::Done | TaskState::Failed { .. }
                            ))
                            .count()
                    );
                }
            }

            let draining = lock(&shared.state).draining;
            supervise(&shared, &mut children, &addr, pool_size, draining);

            if draining && lock(&shared.state).all_terminal() && children.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Unblock every connection thread so the scope can join.
        shared.closed.store(true, Ordering::SeqCst);
        for c in lock(&shared.conns).drain(..) {
            c.shutdown(Shutdown::Both).ok();
        }
        Ok(())
    });
    served?;

    let st = lock(&shared.state);
    eprintln!(
        "[vex serve] drained: {} point(s) served, {} failed; exiting cleanly",
        st.cache.len(),
        st.tasks
            .values()
            .filter(|t| matches!(t.state, TaskState::Failed { .. }))
            .count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vexs_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn subs_log_round_trips_and_truncates_torn_tails() {
        let path = tmp("subs");
        {
            let (mut log, prior) = SubsLog::open(&path, false).unwrap();
            assert!(prior.is_empty());
            log.append("name = \"a\"\nmixes = [\"llll\"]\n").unwrap();
            log.append("name = \"b\"\nmixes = [\"hhhh\"]\n").unwrap();
        }
        let (_, prior) = SubsLog::open(&path, true).unwrap();
        assert_eq!(prior.len(), 2);
        assert!(prior[0].contains("\"a\""));

        // Tear the tail mid-record: the valid prefix survives.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut log, prior) = SubsLog::open(&path, true).unwrap();
        assert_eq!(prior.len(), 1);
        log.append("name = \"c\"\nmixes = [\"llll\"]\n").unwrap();
        drop(log);
        let (_, prior) = SubsLog::open(&path, true).unwrap();
        assert_eq!(prior.len(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_subs_file_is_refused() {
        let path = tmp("subs_foreign");
        fs::write(&path, "definitely not a log\n").unwrap();
        let err = SubsLog::open(&path, true).unwrap_err();
        assert!(err.contains("not a vex serve submission log"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn crashing_task_backs_off_then_quarantines() {
        let policy = ServeSpec {
            retries: 10,
            quarantine: 3,
            ..ServeSpec::default()
        };
        let backoff = BackoffPolicy {
            base_ms: 100,
            max_ms: 5_000,
            jitter: false,
        };
        let mut t = Task {
            label: "p".into(),
            assign: String::new(),
            attempts: 1,
            crashes: 0,
            ready_at: Instant::now(),
            state: TaskState::Running {
                pid: 1,
                since: Instant::now(),
                last_hb: Instant::now(),
            },
        };
        task_crashed(&mut t, 7, &policy, &backoff, "died");
        assert!(matches!(t.state, TaskState::Queued));
        assert!(t.ready_at > Instant::now() - Duration::from_millis(1));
        t.attempts = 2;
        task_crashed(&mut t, 7, &policy, &backoff, "died");
        assert!(matches!(t.state, TaskState::Queued));
        t.attempts = 3;
        task_crashed(&mut t, 7, &policy, &backoff, "died");
        let TaskState::Failed { msg } = &t.state else {
            panic!("third crash must quarantine");
        };
        assert!(msg.contains("quarantined"), "{msg}");
        assert_eq!(t.crashes, 3);
    }

    #[test]
    fn exhausted_retry_budget_fails_without_quarantine() {
        let policy = ServeSpec {
            retries: 1,
            quarantine: 50,
            ..ServeSpec::default()
        };
        let backoff = BackoffPolicy::none();
        let mut t = Task {
            label: "p".into(),
            assign: String::new(),
            attempts: 2,
            crashes: 0,
            ready_at: Instant::now(),
            state: TaskState::Running {
                pid: 1,
                since: Instant::now(),
                last_hb: Instant::now(),
            },
        };
        // attempts (2) > retries (1): the budget is spent.
        task_crashed(&mut t, 9, &policy, &backoff, "died");
        let TaskState::Failed { msg } = &t.state else {
            panic!("spent budget must fail");
        };
        assert!(msg.contains("after 2 attempts"), "{msg}");
    }
}
