//! Figure 15: speedups of cluster-level (COSI) and operation-level (OOSI)
//! split-issue over the SMT baseline (operation-level merging), for NS and
//! AS, on 2- and 4-thread machines.
//!
//! Paper reference points (§VI-B): COSI NS +7.5%/+6.4%, OOSI NS
//! +8.2%/+7.9%, COSI AS +9.8%/+9.4%, OOSI AS +13%/+15.7% (2T/4T
//! averages); peaks ≈ +19.5% (llll COSI AS 2T) and ≈ +22.7% (mmhh OOSI AS).

use crate::sweep::Sweep;
use crate::table::{pct, Table};
use vex_sim::speedup_pct;
use vex_workloads::MIXES;

/// Speedup series over SMT for one thread count.
#[derive(Clone, Debug)]
pub struct Series {
    /// Hardware threads.
    pub threads: u8,
    /// COSI NS per-mix speedups (%).
    pub cosi_ns: Vec<f64>,
    /// COSI AS per-mix speedups (%).
    pub cosi_as: Vec<f64>,
    /// OOSI NS per-mix speedups (%).
    pub oosi_ns: Vec<f64>,
    /// OOSI AS per-mix speedups (%).
    pub oosi_as: Vec<f64>,
}

fn avg(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

impl Series {
    /// Averages over mixes: (COSI NS, COSI AS, OOSI NS, OOSI AS).
    pub fn averages(&self) -> (f64, f64, f64, f64) {
        (
            avg(&self.cosi_ns),
            avg(&self.cosi_as),
            avg(&self.oosi_ns),
            avg(&self.oosi_as),
        )
    }
}

/// Computes both thread-count series from a sweep.
pub fn run(sweep: &Sweep) -> Result<Vec<Series>, String> {
    [2u8, 4]
        .iter()
        .map(|&threads| {
            let mut s = Series {
                threads,
                cosi_ns: Vec::new(),
                cosi_as: Vec::new(),
                oosi_ns: Vec::new(),
                oosi_as: Vec::new(),
            };
            for m in 0..MIXES.len() {
                let base = sweep.ipc(m, "SMT", threads)?;
                s.cosi_ns
                    .push(speedup_pct(base, sweep.ipc(m, "COSI NS", threads)?));
                s.cosi_as
                    .push(speedup_pct(base, sweep.ipc(m, "COSI AS", threads)?));
                s.oosi_ns
                    .push(speedup_pct(base, sweep.ipc(m, "OOSI NS", threads)?));
                s.oosi_as
                    .push(speedup_pct(base, sweep.ipc(m, "OOSI AS", threads)?));
            }
            Ok(s)
        })
        .collect()
}

/// Renders one thread count's table.
pub fn render_one(s: &Series) -> String {
    let mut t = Table::new(&["Mix", "COSI NS", "COSI AS", "OOSI NS", "OOSI AS"]);
    for (m, mix) in MIXES.iter().enumerate() {
        t.row(vec![
            mix.name.to_string(),
            pct(s.cosi_ns[m]),
            pct(s.cosi_as[m]),
            pct(s.oosi_ns[m]),
            pct(s.oosi_as[m]),
        ]);
    }
    let (a, b, c, d) = s.averages();
    t.row(vec!["avg".to_string(), pct(a), pct(b), pct(c), pct(d)]);
    format!("### {}-thread machine\n{}", s.threads, t.render())
}

/// Renders the full figure.
pub fn render(series: &[Series]) -> String {
    format!(
        "## Figure 15: COSI and OOSI speedups over SMT (%)\n\
         (paper 2T averages: COSI NS +7.5, COSI AS +9.8, OOSI NS +8.2, OOSI AS +13.0)\n\
         (paper 4T averages: COSI NS +6.4, COSI AS +9.4, OOSI NS +7.9, OOSI AS +15.7)\n\n{}\n{}",
        render_one(&series[0]),
        render_one(&series[1])
    )
}
