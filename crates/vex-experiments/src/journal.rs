//! Crash-safe sweep journal: an append-only sidecar file recording every
//! completed grid point, so an interrupted sweep can resume without
//! re-simulating finished work.
//!
//! ## File format (`VEXJ 1`)
//!
//! ```text
//! VEXJ 1\n
//! +<len:hex> <crc32:08x>\n
//! <payload of exactly len bytes>\n
//! +<len:hex> <crc32:08x>\n
//! ...
//! ```
//!
//! Each record is self-delimiting (length-prefixed) and self-checking
//! (CRC-32 over the payload), so replay can always tell a complete record
//! from a torn one: a crash mid-append leaves a truncated or garbled tail,
//! which [`Journal::open_resume`] detects, reports, and drops — never a
//! fatal error. The payload is line-oriented text:
//!
//! ```text
//! key=<16 hex digits>        content-addressed point identity
//! label=<RunSpec::label()>   human-readable point name
//! stop=<StopReason::tag()>   how the simulation ended
//! wall_bits=<16 hex digits>  f64::to_bits of the wall-clock seconds
//! <SimStats::snapshot()>     the full statistics dump
//! ```
//!
//! The **key** is what makes resume safe against spec edits: it hashes the
//! point's entire simulated configuration — technique, thread count,
//! machine geometry, caches, budgets, seed — plus a digest of every member
//! program's compiled form. Change anything that could change the result
//! and the key changes, so a stale journal entry can never be replayed
//! into the wrong point. Cosmetic fields (spec name, mix name, trace and
//! journal paths) are deliberately excluded.
//!
//! Durability: every append ends with `fdatasync`, so a record that
//! replay accepts was fully on disk before the sweep moved on. Creating
//! a journal also fsyncs the *parent directory* ([`sync_parent_dir`]),
//! so the file's directory entry itself survives a crash right after
//! creation, not just its contents.
//!
//! Concurrency: a journal is single-writer. Opening one takes an
//! advisory lock — a `<path>.lock` sidecar holding the owner's PID
//! (`flock` isn't in std) — so two processes appending to the same file
//! fail fast with a clear error instead of interleaving records. Locks
//! left behind by dead PIDs are detected and reclaimed.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use vex_isa::Program;
use vex_sim::{SimStats, StopReason};
use vex_spec::RunSpec;

const MAGIC: &str = "VEXJ 1\n";

// ---- hashing --------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, bitwise — no table, speed is irrelevant
/// at one record per simulated grid point).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// FNV-1a 64-bit hasher that accepts `std::fmt::Write`, so `Debug` output
/// can be streamed into it without building intermediate strings.
pub struct Fnv64(u64);

impl Fnv64 {
    /// The standard FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl std::fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

/// Digest of a compiled program's full `Debug` form. The compiler is
/// deterministic, so this is stable across processes for the same source
/// and machine — exactly what cross-run resume needs.
pub fn program_digest(program: &Program) -> u64 {
    use std::fmt::Write;
    let mut h = Fnv64::new();
    let _ = write!(h, "{program:?}");
    h.0
}

/// Content-addressed identity of a grid point: every field that reaches
/// the simulator, plus the member program digests. Two points with equal
/// keys produce bit-identical statistics.
pub fn point_key(run: &RunSpec, member_digests: &[u64]) -> u64 {
    use std::fmt::Write;
    let mut h = Fnv64::new();
    let _ = write!(
        h,
        "{}|{}|{}|{:?}|{:?}|{}|{}|{}|{}|{}|{:?}|{:?}|",
        run.technique.label(),
        run.threads,
        run.renaming,
        run.memory,
        run.mt,
        run.respawn,
        run.inst_limit,
        run.timeslice,
        run.max_cycles,
        run.mix.seed,
        run.machine.config,
        run.caches,
    );
    for &d in member_digests {
        h.update(&d.to_le_bytes());
    }
    h.0
}

// ---- records --------------------------------------------------------

/// One journaled grid point.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Content-addressed point identity ([`point_key`]).
    pub key: u64,
    /// Human-readable point label (`RunSpec::label()`).
    pub label: String,
    /// How the simulation ended.
    pub stop: StopReason,
    /// Wall-clock seconds of the original simulation.
    pub wall_secs: f64,
    /// The full statistics.
    pub stats: SimStats,
}

impl JournalEntry {
    /// Serializes the entry as the journal's line-oriented payload text.
    /// This is also the sweep service's result wire format, so it is
    /// public: a worker sends `to_payload()`, the server re-parses it
    /// with [`JournalEntry::from_payload`] and journals it verbatim.
    pub fn to_payload(&self) -> String {
        format!(
            "key={:016x}\nlabel={}\nstop={}\nwall_bits={:016x}\n{}",
            self.key,
            self.label,
            self.stop.tag(),
            self.wall_secs.to_bits(),
            self.stats.snapshot(),
        )
    }

    /// Parses a payload produced by [`JournalEntry::to_payload`].
    pub fn from_payload(payload: &str) -> Result<JournalEntry, String> {
        fn line<'a>(rest: &mut &'a str, key: &str) -> Result<&'a str, String> {
            let (head, tail) = rest
                .split_once('\n')
                .ok_or_else(|| format!("payload ends before `{key}`"))?;
            *rest = tail;
            head.strip_prefix(key)
                .and_then(|v| v.strip_prefix('='))
                .ok_or_else(|| format!("expected `{key}=...`, got `{head}`"))
        }
        let mut rest = payload;
        let key = u64::from_str_radix(line(&mut rest, "key")?, 16)
            .map_err(|_| "bad hex in `key`".to_string())?;
        let label = line(&mut rest, "label")?.to_string();
        let stop_tag = line(&mut rest, "stop")?;
        let stop = StopReason::from_tag(stop_tag)
            .ok_or_else(|| format!("unknown stop reason `{stop_tag}`"))?;
        let wall_secs = f64::from_bits(
            u64::from_str_radix(line(&mut rest, "wall_bits")?, 16)
                .map_err(|_| "bad hex in `wall_bits`".to_string())?,
        );
        let stats = SimStats::from_snapshot(rest)?;
        Ok(JournalEntry {
            key,
            label,
            stop,
            wall_secs,
            stats,
        })
    }
}

/// What replay found in an existing journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Complete, checksum-valid records replayed.
    pub valid: usize,
    /// Bytes of torn/garbled tail dropped (0 for a clean shutdown).
    pub dropped_bytes: u64,
}

/// Fsyncs the directory containing `path`, making the file's directory
/// entry itself durable. On non-Unix platforms this is a no-op (directory
/// fsync is not portably available there).
pub fn sync_parent_dir(path: &Path) -> Result<(), String> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)
            .and_then(|d| d.sync_all())
            .map_err(|e| format!("cannot sync directory `{}`: {e}", parent.display()))?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Is `pid` a live process? Checked via `/proc` on Linux; elsewhere we
/// conservatively report "alive", so foreign locks are never reclaimed.
fn pid_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

/// An advisory single-writer lock on a journal: a `<path>.lock` sidecar
/// holding the owner's PID. Acquisition is atomic (the PID file is
/// written aside and hard-linked into place), liveness is checked before
/// refusing, and stale locks from dead PIDs are reclaimed. Released on
/// drop.
#[derive(Debug)]
pub struct LockGuard {
    lock_path: PathBuf,
}

impl LockGuard {
    /// Takes the lock guarding `target`, or explains who holds it.
    pub fn acquire(target: &Path) -> Result<LockGuard, String> {
        let mut lock_os = target.as_os_str().to_os_string();
        lock_os.push(".lock");
        let lock_path = PathBuf::from(lock_os);
        let pid = std::process::id();

        // Write the PID aside, then hard-link into place: link(2) fails
        // if the lock exists, and the lock file is never observable in a
        // half-written state.
        let mut tmp_os = lock_path.as_os_str().to_os_string();
        tmp_os.push(format!(".{pid}"));
        let tmp = PathBuf::from(tmp_os);
        fs::write(&tmp, format!("{pid}\n"))
            .map_err(|e| format!("cannot write lockfile `{}`: {e}", tmp.display()))?;

        let mut result = Err(format!(
            "journal `{}` is locked (lockfile `{}` contested)",
            target.display(),
            lock_path.display()
        ));
        // Two attempts: the second follows a stale-lock reclaim.
        for _ in 0..2 {
            match fs::hard_link(&tmp, &lock_path) {
                Ok(()) => {
                    result = Ok(LockGuard {
                        lock_path: lock_path.clone(),
                    });
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&lock_path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(p) if p != pid && pid_alive(p) => {
                            result = Err(format!(
                                "journal `{}` is locked by running process {p} \
                                 (lockfile `{}`); is another sweep writing it?",
                                target.display(),
                                lock_path.display()
                            ));
                            break;
                        }
                        Some(p) if p == pid => {
                            result = Err(format!(
                                "journal `{}` is already locked by this process",
                                target.display()
                            ));
                            break;
                        }
                        // Dead PID or unreadable/torn lockfile: stale.
                        // Reclaim and retry once.
                        _ => {
                            fs::remove_file(&lock_path).ok();
                        }
                    }
                }
                Err(e) => {
                    result = Err(format!(
                        "cannot create lockfile `{}`: {e}",
                        lock_path.display()
                    ));
                    break;
                }
            }
        }
        fs::remove_file(&tmp).ok();
        result
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        fs::remove_file(&self.lock_path).ok();
    }
}

/// An open journal file, positioned for appending. Holds the advisory
/// lock ([`LockGuard`]) for as long as it is open.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    _lock: LockGuard,
}

impl Journal {
    /// Creates (or truncates) a journal at `path` and writes the header.
    /// Takes the advisory lock; fails fast if another live process holds
    /// it.
    pub fn create(path: &Path) -> Result<Journal, String> {
        let lock = LockGuard::acquire(path)?;
        Journal::create_locked(path, lock)
    }

    fn create_locked(path: &Path, lock: LockGuard) -> Result<Journal, String> {
        let mut file = File::create(path)
            .map_err(|e| format!("cannot create journal `{}`: {e}", path.display()))?;
        file.write_all(MAGIC.as_bytes())
            .and_then(|_| file.sync_data())
            .map_err(|e| format!("cannot write journal `{}`: {e}", path.display()))?;
        // Make the directory entry durable too: without this, a crash
        // right after creation can lose the whole file even though its
        // contents were synced.
        sync_parent_dir(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
            _lock: lock,
        })
    }

    /// Opens an existing journal for resume: replays every valid record,
    /// truncates any torn tail, and returns the journal positioned for
    /// appending. A missing file is not an error — it starts fresh.
    /// Takes the advisory lock first, like [`Journal::create`].
    pub fn open_resume(path: &Path) -> Result<(Journal, Vec<JournalEntry>, ReplayReport), String> {
        let lock = LockGuard::acquire(path)?;
        if !path.exists() {
            let j = Journal::create_locked(path, lock)?;
            return Ok((j, Vec::new(), ReplayReport::default()));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot open journal `{}`: {e}", path.display()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| format!("cannot read journal `{}`: {e}", path.display()))?;
        if !bytes.starts_with(MAGIC.as_bytes()) {
            // A crash can tear even the very first write: a strict prefix
            // of the magic is *our* torn header, so rewrite it and start
            // fresh. Anything else was never a journal — refuse to
            // clobber what is probably an operator error.
            if MAGIC.as_bytes().starts_with(&bytes) {
                drop(file);
                let j = Journal::create_locked(path, lock)?;
                return Ok((
                    j,
                    Vec::new(),
                    ReplayReport {
                        valid: 0,
                        dropped_bytes: bytes.len() as u64,
                    },
                ));
            }
            return Err(format!(
                "`{}` is not a vex sweep journal (missing `VEXJ 1` header)",
                path.display()
            ));
        }

        let (entries, valid_end) = replay(&bytes);
        let report = ReplayReport {
            valid: entries.len(),
            dropped_bytes: (bytes.len() - valid_end) as u64,
        };
        // Drop the torn tail so subsequent appends start on a record
        // boundary.
        file.set_len(valid_end as u64)
            .and_then(|_| file.seek(SeekFrom::End(0)))
            .and_then(|_| file.sync_data())
            .map_err(|e| format!("cannot truncate journal `{}`: {e}", path.display()))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                _lock: lock,
            },
            entries,
            report,
        ))
    }

    /// Appends one record and syncs it to disk before returning.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), String> {
        let payload = entry.to_payload();
        let record = format!(
            "+{:x} {:08x}\n{payload}\n",
            payload.len(),
            crc32(payload.as_bytes()),
        );
        self.file
            .write_all(record.as_bytes())
            .and_then(|_| self.file.sync_data())
            .map_err(|e| format!("cannot append to journal `{}`: {e}", self.path.display()))
    }

    /// The journal's path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Walks the record stream, returning every valid entry and the byte
/// offset where validity ends. Any malformed frame — truncated header,
/// short payload, checksum mismatch, unparsable fields — stops the walk
/// there; everything before it is kept.
fn replay(bytes: &[u8]) -> (Vec<JournalEntry>, usize) {
    let mut entries = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        let Some(frame_end) = parse_frame(&bytes[pos..]) else {
            return (entries, pos);
        };
        let (payload, next) = frame_end;
        match JournalEntry::from_payload(payload) {
            Ok(e) => entries.push(e),
            Err(_) => return (entries, pos),
        }
        pos += next;
    }
}

/// Parses one `+<len> <crc>\n<payload>\n` frame from the front of `rest`.
/// Returns the payload and the frame's total length, or `None` if the
/// frame is incomplete or invalid.
fn parse_frame(rest: &[u8]) -> Option<(&str, usize)> {
    if rest.is_empty() {
        return None;
    }
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&rest[..nl]).ok()?;
    let (len_hex, crc_hex) = header.strip_prefix('+')?.split_once(' ')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    let body_start = nl + 1;
    let body_end = body_start.checked_add(len)?;
    // The payload plus its trailing newline must be fully present.
    if body_end >= rest.len() || rest[body_end] != b'\n' {
        return None;
    }
    let payload = &rest[body_start..body_end];
    if crc32(payload) != crc {
        return None;
    }
    Some((std::str::from_utf8(payload).ok()?, body_end + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_sim::ThreadStats;

    fn entry(key: u64) -> JournalEntry {
        JournalEntry {
            key,
            label: "llhh/CCSI_AS/2t/paper".into(),
            stop: StopReason::InstLimit,
            wall_secs: 0.25,
            stats: SimStats {
                cycles: 100 + key,
                total_ops: 250,
                per_thread: vec![ThreadStats::default(), ThreadStats::default()],
                ..Default::default()
            },
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vexj_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn entry_payload_round_trips() {
        let e = entry(0xdead_beef);
        assert_eq!(JournalEntry::from_payload(&e.to_payload()).unwrap(), e);
    }

    #[test]
    fn second_opener_fails_fast_while_lock_is_held() {
        let path = tmp("locked");
        let j = Journal::create(&path).unwrap();
        let err = Journal::open_resume(&path).unwrap_err();
        assert!(err.contains("already locked by this process"), "{err}");
        drop(j);
        // Dropping the journal releases the lock.
        let (_, entries, _) = Journal::open_resume(&path).unwrap();
        assert!(entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_lock_from_dead_pid_is_reclaimed() {
        let path = tmp("stale");
        std::fs::remove_file(&path).ok();
        let lock_path = PathBuf::from(format!("{}.lock", path.display()));
        // u32::MAX is far above any real pid_max, so this PID is dead.
        std::fs::write(&lock_path, format!("{}\n", u32::MAX)).unwrap();
        let mut j = Journal::create(&path).unwrap();
        j.append(&entry(1)).unwrap();
        drop(j);
        assert!(!lock_path.exists(), "lock released on drop");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_lockfile_is_treated_as_stale() {
        let path = tmp("torn_lock");
        std::fs::remove_file(&path).ok();
        let lock_path = PathBuf::from(format!("{}.lock", path.display()));
        std::fs::write(&lock_path, "not a pid").unwrap();
        let j = Journal::create(&path).unwrap();
        drop(j);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn lock_held_by_live_foreign_pid_is_refused() {
        let path = tmp("foreign");
        std::fs::remove_file(&path).ok();
        let lock_path = PathBuf::from(format!("{}.lock", path.display()));
        // PID 1 is always alive and never us.
        std::fs::write(&lock_path, "1\n").unwrap();
        let err = Journal::create(&path).unwrap_err();
        assert!(err.contains("locked by running process 1"), "{err}");
        std::fs::remove_file(&lock_path).ok();
    }

    #[test]
    fn create_append_resume() {
        let path = tmp("basic");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&entry(1)).unwrap();
            j.append(&entry(2)).unwrap();
        }
        let (_, entries, report) = Journal::open_resume(&path).unwrap();
        assert_eq!(entries, vec![entry(1), entry(2)]);
        assert_eq!(
            report,
            ReplayReport {
                valid: 2,
                dropped_bytes: 0
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_appending_continues() {
        let path = tmp("torn");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&entry(1)).unwrap();
            j.append(&entry(2)).unwrap();
        }
        // Simulate a crash mid-append: cut the file inside record 2.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();

        let (mut j, entries, report) = Journal::open_resume(&path).unwrap();
        assert_eq!(entries, vec![entry(1)]);
        assert!(report.dropped_bytes > 0);

        // The truncation restored a record boundary: appends still work.
        j.append(&entry(3)).unwrap();
        drop(j);
        let (_, entries, report) = Journal::open_resume(&path).unwrap();
        assert_eq!(entries, vec![entry(1), entry(3)]);
        assert_eq!(report.dropped_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbled_record_is_dropped() {
        let path = tmp("garbled");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&entry(1)).unwrap();
            j.append(&entry(2)).unwrap();
        }
        // Flip one payload byte in record 2: its CRC no longer matches.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, entries, report) = Journal::open_resume(&path).unwrap();
        assert_eq!(entries, vec![entry(1)]);
        assert!(report.dropped_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn appended_garbage_is_dropped() {
        let path = tmp("garbage");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&entry(9)).unwrap();
        }
        let garbage: &[u8] = b"\x00\xffnot a record at all";
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(garbage);
        std::fs::write(&path, &bytes).unwrap();
        let (_, entries, report) = Journal::open_resume(&path).unwrap();
        assert_eq!(entries, vec![entry(9)]);
        assert_eq!(report.dropped_bytes, garbage.len() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_starts_fresh_but_foreign_file_is_refused() {
        let path = tmp("fresh");
        std::fs::remove_file(&path).ok();
        let (j, entries, _) = Journal::open_resume(&path).unwrap();
        assert!(entries.is_empty());
        drop(j);

        std::fs::write(&path, "just some text\n").unwrap();
        let err = Journal::open_resume(&path).unwrap_err();
        assert!(err.contains("not a vex sweep journal"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_restarts_fresh_instead_of_refusing() {
        let path = tmp("torn_header");
        // A crash cut the very first write mid-magic: every strict prefix
        // of `VEXJ 1\n` (including the empty file) must be recognised as
        // ours and rewritten, not refused as a foreign file.
        for cut in 0..MAGIC.len() {
            std::fs::write(&path, &MAGIC.as_bytes()[..cut]).unwrap();
            let (mut j, entries, report) = Journal::open_resume(&path).unwrap();
            assert!(entries.is_empty());
            assert_eq!(report.dropped_bytes, cut as u64);
            j.append(&entry(9)).unwrap();
            drop(j);
            let (_, entries, _) = Journal::open_resume(&path).unwrap();
            assert_eq!(entries.len(), 1, "cut at {cut}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn wall_bits_round_trip_is_exact() {
        for w in [0.0, 1.5e-9, 0.123456789, f64::MAX] {
            let mut e = entry(5);
            e.wall_secs = w;
            let back = JournalEntry::from_payload(&e.to_payload()).unwrap();
            assert_eq!(back.wall_secs.to_bits(), w.to_bits());
        }
    }
}
