//! Ablation studies beyond the paper's figures (DESIGN.md A1–A3):
//! cluster renaming, communication-split sensitivity, and timeslice
//! stability.

use crate::sweep::sim_config;
use crate::table::{f2, pct, Table};
use crate::Scale;
use vex_sim::{speedup_pct, CommPolicy, MtMode, SimConfig, Technique};
use vex_workloads::{compile_mix, MIXES};

fn run_cfg(cfg: &SimConfig, mix_idx: usize) -> f64 {
    let programs = compile_mix(&MIXES[mix_idx]);
    vex_sim::run_workload(cfg, &programs).ipc()
}

/// A1 — cluster renaming on/off for CSMT and CCSI AS on the `llll` and
/// `hhhh` mixes (4 threads): renaming removes the cluster-0 bias so every
/// merging technique should gain.
pub fn renaming(scale: Scale) -> String {
    let mut t = Table::new(&["Mix", "Technique", "IPC off", "IPC on", "gain"]);
    for &(mname, mix_idx) in &[("llll", 0usize), ("hhhh", 8usize)] {
        for (label, tech) in [
            ("CSMT", Technique::csmt()),
            ("CCSI AS", Technique::ccsi(CommPolicy::AlwaysSplit)),
        ] {
            let mut on = sim_config(tech, 4, scale, 0x5EED_0000 + mix_idx as u64);
            let mut off = on.clone();
            on.renaming = true;
            off.renaming = false;
            let ipc_on = run_cfg(&on, mix_idx);
            let ipc_off = run_cfg(&off, mix_idx);
            t.row(vec![
                mname.to_string(),
                label.to_string(),
                f2(ipc_off),
                f2(ipc_on),
                pct(speedup_pct(ipc_off, ipc_on)),
            ]);
        }
    }
    format!(
        "## Ablation A1: cluster renaming (4-thread)\n\n{}",
        t.render()
    )
}

/// A2 — NS-vs-AS gap per ILP class: the paper attributes the gap to the
/// send/recv density of high-ILP code; comparing a low mix (`llll`)
/// against a high mix (`hhhh`) makes the correlation visible.
pub fn comm_split(scale: Scale) -> String {
    let mut t = Table::new(&["Mix", "Technique", "IPC NS", "IPC AS", "AS gain"]);
    for &(mname, mix_idx) in &[("llll", 0usize), ("mmhh", 7usize), ("hhhh", 8usize)] {
        for (label, ns, asp) in [
            (
                "CCSI",
                Technique::ccsi(CommPolicy::NoSplit),
                Technique::ccsi(CommPolicy::AlwaysSplit),
            ),
            (
                "OOSI",
                Technique::oosi(CommPolicy::NoSplit),
                Technique::oosi(CommPolicy::AlwaysSplit),
            ),
        ] {
            let seed = 0x5EED_0000 + mix_idx as u64;
            let ipc_ns = run_cfg(&sim_config(ns, 2, scale, seed), mix_idx);
            let ipc_as = run_cfg(&sim_config(asp, 2, scale, seed), mix_idx);
            t.row(vec![
                mname.to_string(),
                label.to_string(),
                f2(ipc_ns),
                f2(ipc_as),
                pct(speedup_pct(ipc_ns, ipc_as)),
            ]);
        }
    }
    format!(
        "## Ablation A2: communication-split sensitivity (2-thread)\n\n{}",
        t.render()
    )
}

/// A3 — timeslice sensitivity on `mmhh`: measured IPC should be stable
/// across a wide range of timeslice lengths (the paper's respawning setup
/// avoids needing FAME-style stabilisation).
pub fn timeslice(scale: Scale) -> String {
    let mut t = Table::new(&["Timeslice", "CSMT IPC", "CCSI AS IPC"]);
    for ts in [scale.timeslice / 4, scale.timeslice, scale.timeslice * 4] {
        let mut row = vec![ts.to_string()];
        for tech in [Technique::csmt(), Technique::ccsi(CommPolicy::AlwaysSplit)] {
            let mut cfg = sim_config(tech, 2, scale, 0x5EED_0007);
            cfg.timeslice = ts;
            row.push(f2(run_cfg(&cfg, 7)));
        }
        t.row(row);
    }
    format!(
        "## Ablation A3: timeslice sensitivity (mmhh, 2-thread)\n\n{}",
        t.render()
    )
}

/// A4 — machine scaling: how the CCSI-over-CSMT benefit moves with the
/// number of hardware threads (1, 2, 4) on a mixed-ILP workload. The
/// paper's Figures 14/16 cover 2 and 4 threads; the single-thread column
/// verifies that all techniques collapse to identical performance when
/// there is nothing to merge.
pub fn thread_scaling(scale: Scale) -> String {
    let mut t = Table::new(&["Threads", "CSMT", "CCSI AS", "SMT", "OOSI AS"]);
    for threads in [1u8, 2, 4] {
        let mut row = vec![threads.to_string()];
        for tech in [
            Technique::csmt(),
            Technique::ccsi(CommPolicy::AlwaysSplit),
            Technique::smt(),
            Technique::oosi(CommPolicy::AlwaysSplit),
        ] {
            let cfg = sim_config(tech, threads, scale, 0x5EED_0005);
            row.push(f2(run_cfg(&cfg, 5)));
        }
        t.row(row);
    }
    format!(
        "## Ablation A4: thread scaling on llhh (IPC per technique)\n\n{}",
        t.render()
    )
}

/// A5 — multithreading disciplines (paper §I): Block MT and Interleaved MT
/// only reduce *vertical* waste (cycles with zero issue), while the SMT
/// family also attacks *horizontal* waste. The table reports IPC plus the
/// waste decomposition on the `llmm` mix (4 threads).
pub fn mt_modes(scale: Scale) -> String {
    let mut t = Table::new(&["Scheme", "IPC", "vert.waste", "horiz.waste"]);
    let width = vex_isa::MachineConfig::paper_4c4w().total_issue_width();
    for (label, mode, tech) in [
        ("BMT", MtMode::Blocked, Technique::csmt()),
        ("IMT", MtMode::Interleaved, Technique::csmt()),
        ("CSMT", MtMode::Simultaneous, Technique::csmt()),
        (
            "CCSI AS",
            MtMode::Simultaneous,
            Technique::ccsi(CommPolicy::AlwaysSplit),
        ),
        ("SMT", MtMode::Simultaneous, Technique::smt()),
    ] {
        let mut cfg = sim_config(tech, 4, scale, 0x5EED_0003);
        cfg.mt_mode = mode;
        let programs = compile_mix(&MIXES[3]);
        let stats = vex_sim::run_workload(&cfg, &programs);
        t.row(vec![
            label.to_string(),
            f2(stats.ipc()),
            format!("{:.1}%", 100.0 * stats.vertical_waste()),
            format!("{:.1}%", 100.0 * stats.horizontal_waste(width)),
        ]);
    }
    format!(
        "## Ablation A5: multithreading disciplines on llmm (4-thread)\n\n{}",
        t.render()
    )
}
