//! Ablation studies beyond the paper's figures (docs/SPECS.md lists the
//! corresponding spec shapes): cluster renaming, communication-split
//! sensitivity, timeslice stability, thread scaling and multithreading
//! disciplines. Each ablation is a thin spec-builder over the shared
//! [`SweepRunner`]: it varies exactly one scalar of a small [`SweepSpec`]
//! and tabulates the results.

use crate::runner::{SweepOutcome, SweepRunner};
use crate::table::{f2, pct, Table};
use crate::Scale;
use vex_sim::{speedup_pct, CommPolicy, MtMode, Technique};
use vex_spec::{MixSpec, SweepSpec, DEFAULT_SEED};

/// A base ablation spec: the given built-in mixes, techniques and thread
/// counts on the paper machine at `scale`.
fn spec(scale: Scale, mixes: &[&str], techniques: &[Technique], threads: &[u8]) -> SweepSpec {
    let mut s = SweepSpec::base(scale);
    s.name = "ablation".to_string();
    s.mixes = mixes
        .iter()
        .map(|m| MixSpec::builtin(m, DEFAULT_SEED))
        .collect();
    s.techniques = techniques.to_vec();
    s.threads = threads.to_vec();
    s
}

fn run(spec: &SweepSpec) -> Result<SweepOutcome, String> {
    SweepRunner::new(spec).run()
}

/// A1 — cluster renaming on/off for CSMT and CCSI AS on the `llll` and
/// `hhhh` mixes (4 threads): renaming removes the cluster-0 bias so every
/// merging technique should gain.
pub fn renaming(scale: Scale) -> Result<String, String> {
    let techs = [
        ("CSMT", Technique::csmt()),
        ("CCSI AS", Technique::ccsi(CommPolicy::AlwaysSplit)),
    ];
    let on_spec = spec(scale, &["llll", "hhhh"], &[techs[0].1, techs[1].1], &[4]);
    let mut off_spec = on_spec.clone();
    off_spec.renaming = false;
    let on = run(&on_spec)?;
    let off = run(&off_spec)?;

    let mut t = Table::new(&["Mix", "Technique", "IPC off", "IPC on", "gain"]);
    for mix in ["llll", "hhhh"] {
        for (label, _) in techs {
            let ipc_on = on.ipc(mix, label, 4)?;
            let ipc_off = off.ipc(mix, label, 4)?;
            t.row(vec![
                mix.to_string(),
                label.to_string(),
                f2(ipc_off),
                f2(ipc_on),
                pct(speedup_pct(ipc_off, ipc_on)),
            ]);
        }
    }
    Ok(format!(
        "## Ablation A1: cluster renaming (4-thread)\n\n{}",
        t.render()
    ))
}

/// A2 — NS-vs-AS gap per ILP class: the paper attributes the gap to the
/// send/recv density of high-ILP code; comparing a low mix (`llll`)
/// against a high mix (`hhhh`) makes the correlation visible.
pub fn comm_split(scale: Scale) -> Result<String, String> {
    let outcome = run(&spec(
        scale,
        &["llll", "mmhh", "hhhh"],
        &[
            Technique::ccsi(CommPolicy::NoSplit),
            Technique::ccsi(CommPolicy::AlwaysSplit),
            Technique::oosi(CommPolicy::NoSplit),
            Technique::oosi(CommPolicy::AlwaysSplit),
        ],
        &[2],
    ))?;

    let mut t = Table::new(&["Mix", "Technique", "IPC NS", "IPC AS", "AS gain"]);
    for mix in ["llll", "mmhh", "hhhh"] {
        for base in ["CCSI", "OOSI"] {
            let ipc_ns = outcome.ipc(mix, &format!("{base} NS"), 2)?;
            let ipc_as = outcome.ipc(mix, &format!("{base} AS"), 2)?;
            t.row(vec![
                mix.to_string(),
                base.to_string(),
                f2(ipc_ns),
                f2(ipc_as),
                pct(speedup_pct(ipc_ns, ipc_as)),
            ]);
        }
    }
    Ok(format!(
        "## Ablation A2: communication-split sensitivity (2-thread)\n\n{}",
        t.render()
    ))
}

/// A3 — timeslice sensitivity on `mmhh`: measured IPC should be stable
/// across a wide range of timeslice lengths (the paper's respawning setup
/// avoids needing FAME-style stabilisation).
pub fn timeslice(scale: Scale) -> Result<String, String> {
    let techs = [Technique::csmt(), Technique::ccsi(CommPolicy::AlwaysSplit)];
    let mut t = Table::new(&["Timeslice", "CSMT IPC", "CCSI AS IPC"]);
    for ts in [scale.timeslice / 4, scale.timeslice, scale.timeslice * 4] {
        let mut s = spec(scale, &["mmhh"], &techs, &[2]);
        s.timeslice = ts;
        let outcome = run(&s)?;
        t.row(vec![
            ts.to_string(),
            f2(outcome.ipc("mmhh", "CSMT", 2)?),
            f2(outcome.ipc("mmhh", "CCSI AS", 2)?),
        ]);
    }
    Ok(format!(
        "## Ablation A3: timeslice sensitivity (mmhh, 2-thread)\n\n{}",
        t.render()
    ))
}

/// A4 — machine scaling: how the CCSI-over-CSMT benefit moves with the
/// number of hardware threads (1, 2, 4) on a mixed-ILP workload. The
/// paper's Figures 14/16 cover 2 and 4 threads; the single-thread column
/// verifies that all techniques collapse to identical performance when
/// there is nothing to merge.
pub fn thread_scaling(scale: Scale) -> Result<String, String> {
    let techs = [
        ("CSMT", Technique::csmt()),
        ("CCSI AS", Technique::ccsi(CommPolicy::AlwaysSplit)),
        ("SMT", Technique::smt()),
        ("OOSI AS", Technique::oosi(CommPolicy::AlwaysSplit)),
    ];
    let outcome = run(&spec(
        scale,
        &["llhh"],
        &[techs[0].1, techs[1].1, techs[2].1, techs[3].1],
        &[1, 2, 4],
    ))?;

    let mut t = Table::new(&["Threads", "CSMT", "CCSI AS", "SMT", "OOSI AS"]);
    for threads in [1u8, 2, 4] {
        let mut row = vec![threads.to_string()];
        for (label, _) in techs {
            row.push(f2(outcome.ipc("llhh", label, threads)?));
        }
        t.row(row);
    }
    Ok(format!(
        "## Ablation A4: thread scaling on llhh (IPC per technique)\n\n{}",
        t.render()
    ))
}

/// A5 — multithreading disciplines (paper §I): Block MT and Interleaved MT
/// only reduce *vertical* waste (cycles with zero issue), while the SMT
/// family also attacks *horizontal* waste. The table reports IPC plus the
/// waste decomposition on the `llmm` mix (4 threads).
pub fn mt_modes(scale: Scale) -> Result<String, String> {
    let mut t = Table::new(&["Scheme", "IPC", "vert.waste", "horiz.waste"]);
    let width = vex_isa::MachineConfig::paper_4c4w().total_issue_width();
    for (label, mode, tech) in [
        ("BMT", MtMode::Blocked, Technique::csmt()),
        ("IMT", MtMode::Interleaved, Technique::csmt()),
        ("CSMT", MtMode::Simultaneous, Technique::csmt()),
        (
            "CCSI AS",
            MtMode::Simultaneous,
            Technique::ccsi(CommPolicy::AlwaysSplit),
        ),
        ("SMT", MtMode::Simultaneous, Technique::smt()),
    ] {
        let mut s = spec(scale, &["llmm"], &[tech], &[4]);
        s.mt = mode;
        let outcome = run(&s)?;
        let stats = outcome.stats("llmm", tech.label(), 4)?;
        t.row(vec![
            label.to_string(),
            f2(stats.ipc()),
            format!("{:.1}%", 100.0 * stats.vertical_waste()),
            format!("{:.1}%", 100.0 * stats.horizontal_waste(width)),
        ]);
    }
    Ok(format!(
        "## Ablation A5: multithreading disciplines on llmm (4-thread)\n\n{}",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_sim::MemoryMode;

    #[test]
    fn perfect_memory_beats_real_memory() {
        let quick = Scale {
            inst_limit: 2_000,
            timeslice: 1_000,
        };
        let mut s = spec(quick, &["llmh"], &[Technique::csmt()], &[2]);
        let real = run(&s).unwrap().ipc("llmh", "CSMT", 2).unwrap();
        s.memory = MemoryMode::Perfect;
        let perfect = run(&s).unwrap().ipc("llmh", "CSMT", 2).unwrap();
        assert!(
            perfect >= real,
            "perfect {perfect:.3} must be >= real {real:.3}"
        );
    }
}
