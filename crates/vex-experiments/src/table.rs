//! Minimal ASCII table rendering for experiment reports.

/// A simple left-padded table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                // Right-align numeric-looking cells, left-align labels.
                let numeric = cells[i]
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || "+-.%".contains(ch));
                if numeric && !cells[i].is_empty() {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                } else {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with one decimal and sign.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "ipc"]);
        t.row(vec!["colorspace".into(), f2(8.88)]);
        t.row(vec!["mcf".into(), f2(0.96)]);
        let s = t.render();
        assert!(s.contains("colorspace"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
