//! The one sweep engine: expands a [`SweepSpec`] into deduplicated run
//! points, prepares every distinct (machine, workload-member) program
//! exactly once — compile for built-ins, a pluggable loader for `.vex` /
//! `.vexb` paths — shares each `Arc<DecodedProgram>` across all points it
//! appears in, fans the grid out over [`parallel_map_isolated`], and
//! returns structured results (with a JSON form for artifacts).
//!
//! Every sweep in the repository executes here: the figure modules,
//! the ablations, `bin/repro`, the `sim_throughput` bench and the
//! `vex sweep` CLI are all thin spec-builders over this runner.
//!
//! ## Crash safety and fault isolation
//!
//! Three independent layers (all off by default — the hot path of a plain
//! `run()` is unchanged; see `docs/ROBUSTNESS.md`):
//!
//! * **Journaling** ([`SweepRunner::journal`] / [`SweepRunner::resume`]):
//!   each completed point is appended to a [`Journal`] sidecar and fsynced
//!   before the sweep moves on. Resume replays the journal, skips every
//!   point whose content-addressed key is already recorded, and merges the
//!   replayed results into the outcome in expansion order.
//! * **Isolation** ([`SweepRunner::keep_going`]): every point runs under
//!   `catch_unwind`; a panicking or failing point becomes a structured
//!   [`PointError`] instead of tearing down the sweep. The default is
//!   fail-fast: the first failure stops new points from starting and the
//!   untouched tail is reported as skipped.
//! * **Retry** ([`SweepRunner::retries`]): transient failures (including
//!   panics) are retried up to the budget before a point is declared
//!   failed, paced by the shared [`BackoffPolicy`] (exponential with
//!   deterministic jitter — the same schedule the `vex serve` service
//!   applies to crashed workers); [`SweepRunner::on_retry`] observes each
//!   re-attempt, and [`SweepRunner::sleeper`] injects the clock so tests
//!   assert the schedule instead of waiting it out.

use crate::backoff::{BackoffPolicy, OsSleeper, Sleeper};
use crate::jobs::{key_of, prepare_programs};
use crate::journal::{Journal, JournalEntry};
use crate::{
    default_workers, lock_clean, panic_message, parallel_map_isolated, FaultPlan, JobStatus,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use vex_isa::Program;
use vex_sim::{run_prepared_full, PreparedProgram, SimStats, StopReason};
use vex_spec::{RunSpec, SweepSpec};

/// Resolves a `.vex`/`.vexb` path to a program. The runner itself has no
/// parser dependency; the `vex` CLI plugs `vex_asm` in here.
pub type ProgramLoader<'a> = &'a (dyn Fn(&str) -> Result<Program, String> + Sync);

/// Observes retry attempts (point, attempt number about to run). Tests
/// and CLIs hang reseeding or backoff off this.
pub type RetryHook<'a> = &'a (dyn Fn(&RunSpec, u32) + Sync);

/// One simulated grid point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The fully-resolved point.
    pub run: RunSpec,
    /// Its statistics.
    pub stats: SimStats,
    /// How the simulation ended ([`StopReason::Exhausted`] marks a point
    /// the `max_cycles` watchdog cut off — `stats` is then partial).
    pub stop: StopReason,
    /// Wall-clock seconds of the simulation itself (program preparation
    /// is shared across points and excluded).
    pub wall_secs: f64,
    /// Content-addressed point identity (see [`crate::point_key`]).
    pub key: u64,
    /// True when this result was replayed from the journal instead of
    /// simulated in this process.
    pub resumed: bool,
    /// Simulation attempts this result took (1 = first try; 0 = replayed).
    pub attempts: u32,
}

/// How a point failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointFailure {
    /// The point's job panicked; the payload text is kept.
    Panic(String),
    /// The point's job returned an error.
    Failed(String),
    /// The point never ran: a fail-fast sweep aborted before it started.
    Skipped,
    /// No such point exists in the outcome (bad lookup coordinates).
    MissingPoint,
}

/// A structured per-point failure: which point, how many attempts were
/// spent, and what went wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointError {
    /// Content-addressed point identity (0 when the point is unknown).
    pub key: u64,
    /// Human-readable point label (`RunSpec::label()`).
    pub label: String,
    /// Attempts spent before giving up (0 = never ran).
    pub attempts: u32,
    /// The failure itself.
    pub cause: PointFailure,
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointFailure::Panic(msg) => write!(f, "panicked: {msg}"),
            PointFailure::Failed(msg) => write!(f, "failed: {msg}"),
            PointFailure::Skipped => write!(f, "skipped (sweep aborted by an earlier failure)"),
            PointFailure::MissingPoint => write!(f, "no such point in the sweep"),
        }
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {}: {}", self.label, self.cause)?;
        if self.attempts > 1 {
            write!(f, " (after {} attempts)", self.attempts)?;
        }
        Ok(())
    }
}

impl From<PointError> for String {
    fn from(e: PointError) -> String {
        e.to_string()
    }
}

impl PointFailure {
    /// Short machine-readable tag for the JSON error table.
    pub fn tag(&self) -> &'static str {
        match self {
            PointFailure::Panic(_) => "panic",
            PointFailure::Failed(_) => "error",
            PointFailure::Skipped => "skipped",
            PointFailure::MissingPoint => "missing",
        }
    }

    fn message(&self) -> &str {
        match self {
            PointFailure::Panic(m) | PointFailure::Failed(m) => m,
            PointFailure::Skipped | PointFailure::MissingPoint => "",
        }
    }
}

/// All results of a sweep, in expansion order (mix-major), plus the
/// errors of any points that did not complete.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The spec that was run.
    pub spec: SweepSpec,
    /// One result per completed grid point.
    pub points: Vec<PointResult>,
    /// One error per failed or skipped grid point (empty on success).
    pub errors: Vec<PointError>,
}

impl SweepOutcome {
    /// Statistics at a grid point, matched by mix name, technique label
    /// and thread count (the first machine that matches — single-machine
    /// specs have exactly one). A point that failed returns its recorded
    /// [`PointError`]; coordinates matching nothing return
    /// [`PointFailure::MissingPoint`].
    pub fn stats(&self, mix: &str, tech_label: &str, threads: u8) -> Result<&SimStats, PointError> {
        if let Some(p) = self.points.iter().find(|p| {
            p.run.mix.name == mix
                && p.run.technique.label() == tech_label
                && p.run.threads == threads
        }) {
            return Ok(&p.stats);
        }
        // The labels errors carry are `mix/TECH_LABEL/Nt/machine`.
        let prefix = format!("{mix}/{}/{threads}t/", tech_label.replace(' ', "_"));
        if let Some(e) = self.errors.iter().find(|e| e.label.starts_with(&prefix)) {
            return Err(e.clone());
        }
        Err(PointError {
            key: 0,
            label: format!("{mix}/{}/{threads}t/?", tech_label.replace(' ', "_")),
            attempts: 0,
            cause: PointFailure::MissingPoint,
        })
    }

    /// IPC at a grid point.
    pub fn ipc(&self, mix: &str, tech_label: &str, threads: u8) -> Result<f64, PointError> {
        Ok(self.stats(mix, tech_label, threads)?.ipc())
    }

    /// Structured results as a JSON document (hand-rolled: the build
    /// environment has no serde), one object per point plus the sweep
    /// header and an error table — the artifact format CI uploads.
    /// Resume provenance (`resumed`, `attempts`) is deliberately omitted
    /// so a resumed sweep's artifact is byte-identical to an
    /// uninterrupted one.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"spec\": \"{}\",", self.spec.name);
        let _ = writeln!(out, "  \"inst_limit\": {},", self.spec.inst_limit);
        let _ = writeln!(out, "  \"timeslice\": {},", self.spec.timeslice);
        let _ = writeln!(out, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let s = &p.stats;
            let _ = write!(
                out,
                "    {{\"mix\": \"{}\", \"technique\": \"{}\", \"threads\": {}, \
                 \"machine\": \"{}\", \"seed\": {}, \"key\": \"{:016x}\", \
                 \"stop\": \"{}\", \"cycles\": {}, \"ops\": {}, \
                 \"insts\": {}, \"ipc\": {:.6}, \"merged_cycles\": {}, \
                 \"empty_cycles\": {}, \"wall_secs\": {:.6}}}",
                p.run.mix.name,
                p.run.technique.label().replace(' ', "_"),
                p.run.threads,
                p.run.machine.name,
                p.run.mix.seed,
                p.key,
                p.stop.tag(),
                s.cycles,
                s.total_ops,
                s.total_insts,
                s.ipc(),
                s.merged_cycles,
                s.empty_cycles,
                p.wall_secs,
            );
            let _ = writeln!(out, "{}", if i + 1 == self.points.len() { "" } else { "," });
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"errors\": [");
        for (i, e) in self.errors.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"label\": \"{}\", \"key\": \"{:016x}\", \"cause\": \"{}\", \
                 \"attempts\": {}, \"message\": \"{}\"}}",
                e.label,
                e.key,
                e.cause.tag(),
                e.attempts,
                json_escape(e.cause.message()),
            );
            let _ = writeln!(out, "{}", if i + 1 == self.errors.len() { "" } else { "," });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a message for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Executes a [`SweepSpec`]. Build with [`SweepRunner::new`], optionally
/// cap [`SweepRunner::workers`] (benches use 1 for clean timing), plug a
/// [`SweepRunner::loader`] for path workloads, or switch on the crash
///-safety layers (journal / resume / keep-going / retries), then
/// [`SweepRunner::run`].
pub struct SweepRunner<'a> {
    spec: &'a SweepSpec,
    workers: usize,
    loader: Option<ProgramLoader<'a>>,
    journal: Option<String>,
    resume: bool,
    keep_going: bool,
    retries: Option<u32>,
    retry_hook: Option<RetryHook<'a>>,
    backoff: BackoffPolicy,
    sleeper: &'a dyn Sleeper,
    fault: Option<&'a FaultPlan>,
    deterministic_wall: bool,
}

impl<'a> SweepRunner<'a> {
    /// A runner over `spec` with one worker per available core.
    pub fn new(spec: &'a SweepSpec) -> Self {
        SweepRunner {
            spec,
            workers: default_workers(),
            loader: None,
            journal: None,
            resume: false,
            keep_going: false,
            retries: None,
            retry_hook: None,
            backoff: BackoffPolicy::default(),
            sleeper: &OsSleeper,
            fault: None,
            deterministic_wall: false,
        }
    }

    /// Caps the fan-out (1 = serial, for timing-sensitive callers).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Plugs in a resolver for `.vex`/`.vexb` mix members.
    pub fn loader(mut self, loader: ProgramLoader<'a>) -> Self {
        self.loader = Some(loader);
        self
    }

    /// Journals every completed point to `path` (overrides the spec's
    /// `journal` key; without either, no journal is written).
    pub fn journal(mut self, path: &str) -> Self {
        self.journal = Some(path.to_string());
        self
    }

    /// Replays an existing journal before running: already-recorded
    /// points are merged from it instead of re-simulated. Requires a
    /// journal path.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Keep simulating the remaining points when one fails (default is
    /// fail-fast: stop starting new points after the first failure).
    pub fn keep_going(mut self, on: bool) -> Self {
        self.keep_going = on;
        self
    }

    /// Retry budget per point (overrides the spec's `[limits] retries`).
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = Some(n);
        self
    }

    /// Observes each retry before it runs (reseed/backoff hook).
    pub fn on_retry(mut self, hook: RetryHook<'a>) -> Self {
        self.retry_hook = Some(hook);
        self
    }

    /// Retry pacing policy (default: [`BackoffPolicy::default`] —
    /// exponential with deterministic jitter). Use
    /// [`BackoffPolicy::none`] for immediate re-runs.
    pub fn backoff(mut self, policy: BackoffPolicy) -> Self {
        self.backoff = policy;
        self
    }

    /// Injects the retry clock (default: real `thread::sleep`). Tests
    /// plug a recorder here, so backoff schedules are asserted rather
    /// than waited on; the wall-clock field is unaffected either way —
    /// it only times the simulation itself.
    pub fn sleeper(mut self, sleeper: &'a dyn Sleeper) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Injects faults (test support; see [`FaultPlan`]).
    pub fn fault(mut self, plan: &'a FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Reports every `wall_secs` as zero, making sweep artifacts
    /// byte-reproducible — the crash-resume tests and CI diff them.
    pub fn deterministic_wall(mut self, on: bool) -> Self {
        self.deterministic_wall = on;
        self
    }

    /// Runs the whole grid: every distinct (machine, member) program is
    /// prepared once, then all points fan out in parallel.
    ///
    /// `Err` means the sweep could not run or could not keep its
    /// durability promise (spec problems, unloadable programs, journal
    /// I/O). Per-point simulation failures do **not** end up here — they
    /// are collected in [`SweepOutcome::errors`].
    pub fn run(&self) -> Result<SweepOutcome, String> {
        let points = self.spec.expand();
        if points.is_empty() {
            return Err(format!(
                "spec `{}` expands to no run points (empty axis)",
                self.spec.name
            ));
        }

        // Prepare each distinct (machine, member) program exactly once.
        // Keyed by machine *index* because machines with identical
        // geometry were already collapsed by `expand`. The digest feeds
        // the journal's content-addressed point keys. Shared with the
        // sweep service through the job model (`crate::jobs`).
        let prepared = prepare_programs(&points, self.loader)?;

        // Open the journal (if any) and replay prior progress (if resuming).
        let journal_path = self.journal.as_deref().or(self.spec.journal.as_deref());
        if self.resume && journal_path.is_none() {
            return Err("resume requested but no journal path is set".to_string());
        }
        let mut replayed: HashMap<u64, JournalEntry> = HashMap::new();
        let journal: Mutex<Option<Journal>> = Mutex::new(match journal_path {
            Some(path) if self.resume => {
                let (j, entries, _report) = Journal::open_resume(Path::new(path))?;
                for e in entries {
                    replayed.insert(e.key, e);
                }
                Some(j)
            }
            Some(path) => Some(Journal::create(Path::new(path))?),
            None => None,
        });
        // First journal-append failure; once set the sweep cannot keep
        // its durability promise and `run` returns `Err` at the end.
        let journal_err: Mutex<Option<String>> = Mutex::new(None);

        let retries = self.retries.unwrap_or(self.spec.retries);
        let zero_wall = self.deterministic_wall;
        let fault = self.fault;
        let retry_hook = self.retry_hook;
        let backoff = self.backoff;
        let sleeper = self.sleeper;

        // One slot per expanded point, so replayed and simulated results
        // merge back in expansion order.
        let mut slots: Vec<Option<PointResult>> = Vec::with_capacity(points.len());
        let mut slot_ids: Vec<(u64, String)> = Vec::with_capacity(points.len());
        let mut jobs = Vec::new();
        let mut job_slot: Vec<usize> = Vec::new();
        for (index, run) in points.into_iter().enumerate() {
            let key = key_of(&run, &prepared);
            let label = run.label();
            slot_ids.push((key, label.clone()));

            if let Some(entry) = replayed.get(&key) {
                slots.push(Some(PointResult {
                    run,
                    stats: entry.stats.clone(),
                    stop: entry.stop,
                    wall_secs: if zero_wall { 0.0 } else { entry.wall_secs },
                    key,
                    resumed: true,
                    attempts: 0,
                }));
                continue;
            }
            slots.push(None);

            let workload: Vec<PreparedProgram> = run
                .mix
                .members
                .iter()
                .map(|m| {
                    prepared[&(run.machine_index, m.as_str().to_string())]
                        .0
                        .clone()
                })
                .collect();
            let journal = &journal;
            let journal_err = &journal_err;
            job_slot.push(index);
            jobs.push(move || -> Result<PointResult, PointError> {
                let mut last = PointFailure::Skipped;
                for attempt in 1..=retries.saturating_add(1) {
                    if attempt > 1 {
                        if let Some(hook) = retry_hook {
                            hook(&run, attempt);
                        }
                        // Pace the re-run; this happens outside the
                        // simulation's wall-clock window, so recorded
                        // timings (and `deterministic_wall` byte
                        // identity) are unaffected.
                        sleeper.sleep(Duration::from_millis(backoff.delay_ms(key, attempt)));
                    }
                    let sim = catch_unwind(AssertUnwindSafe(
                        || -> Result<(SimStats, StopReason, f64), String> {
                            if let Some(f) = fault {
                                if f.panic_at == Some(index) && attempt == 1 {
                                    panic!("injected panic at point {index}");
                                }
                                if f.error_at == Some(index) {
                                    return Err(format!("injected error at point {index}"));
                                }
                                if f.fail_once_at == Some(index) && attempt == 1 {
                                    return Err(format!(
                                        "injected transient failure at point {index}"
                                    ));
                                }
                            }
                            let cfg = run.to_sim_config();
                            let start = Instant::now();
                            let (stats, stop) = run_prepared_full(&cfg, &workload);
                            let wall = if zero_wall {
                                0.0
                            } else {
                                start.elapsed().as_secs_f64()
                            };
                            Ok((stats, stop, wall))
                        },
                    ));
                    match sim {
                        Ok(Ok((stats, stop, wall_secs))) => {
                            if let Some(j) = lock_clean(journal).as_mut() {
                                let entry = JournalEntry {
                                    key,
                                    label: label.clone(),
                                    stop,
                                    wall_secs,
                                    stats: stats.clone(),
                                };
                                if let Err(e) = j.append(&entry) {
                                    let mut latch = lock_clean(journal_err);
                                    if latch.is_none() {
                                        *latch = Some(e.clone());
                                    }
                                    return Err(PointError {
                                        key,
                                        label,
                                        attempts: attempt,
                                        cause: PointFailure::Failed(format!(
                                            "completed but could not be journaled: {e}"
                                        )),
                                    });
                                }
                            }
                            return Ok(PointResult {
                                run,
                                stats,
                                stop,
                                wall_secs,
                                key,
                                resumed: false,
                                attempts: attempt,
                            });
                        }
                        Ok(Err(msg)) => last = PointFailure::Failed(msg),
                        Err(payload) => last = PointFailure::Panic(panic_message(payload.as_ref())),
                    }
                }
                Err(PointError {
                    key,
                    label,
                    attempts: retries.saturating_add(1),
                    cause: last,
                })
            });
        }

        let statuses = parallel_map_isolated(jobs, self.workers, !self.keep_going);
        let mut errors = Vec::new();
        for (j, status) in statuses.into_iter().enumerate() {
            let slot = job_slot[j];
            match status {
                JobStatus::Done(result) => slots[slot] = Some(result),
                JobStatus::Failed(e) => errors.push(e),
                JobStatus::Panicked(payload) => {
                    let (key, label) = slot_ids[slot].clone();
                    errors.push(PointError {
                        key,
                        label,
                        attempts: 1,
                        cause: PointFailure::Panic(panic_message(payload.as_ref())),
                    });
                }
                JobStatus::Skipped => {
                    let (key, label) = slot_ids[slot].clone();
                    errors.push(PointError {
                        key,
                        label,
                        attempts: 0,
                        cause: PointFailure::Skipped,
                    });
                }
            }
        }
        if let Some(e) = lock_clean(&journal_err).take() {
            return Err(format!("sweep journal lost durability: {e}"));
        }

        Ok(SweepOutcome {
            spec: self.spec.clone(),
            points: slots.into_iter().flatten().collect(),
            errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_sim::{Scale, SimConfig, Technique};
    use vex_spec::MixSpec;

    fn small_spec() -> SweepSpec {
        let mut spec = SweepSpec::base(Scale {
            inst_limit: 1_000,
            timeslice: 500,
        });
        spec.techniques = vec![Technique::csmt(), Technique::smt()];
        spec.threads = vec![2];
        spec.mixes = vec![MixSpec::builtin("llll", 7)];
        spec
    }

    /// A spec-driven point must be bit-identical to the same point run
    /// directly through `run_workload` (shared decode must not matter).
    #[test]
    fn runner_matches_direct_run() {
        let mut spec = SweepSpec::base(Scale {
            inst_limit: 3_000,
            timeslice: 500,
        });
        spec.techniques = vec![Technique::ccsi(vex_sim::CommPolicy::AlwaysSplit)];
        spec.threads = vec![2];
        spec.mixes = vec![MixSpec::builtin("llhh", vex_spec::DEFAULT_SEED)];
        let outcome = SweepRunner::new(&spec).run().unwrap();
        assert_eq!(outcome.points.len(), 1);
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.points[0].stop, vex_sim::StopReason::InstLimit);
        assert_eq!(outcome.points[0].attempts, 1);
        assert!(!outcome.points[0].resumed);

        let cfg: SimConfig = spec.expand()[0].to_sim_config();
        let programs = vex_workloads::compile_mix(
            vex_workloads::MIXES
                .iter()
                .find(|m| m.name == "llhh")
                .unwrap(),
        );
        let direct = vex_sim::run_workload(&cfg, &programs);
        assert_eq!(outcome.points[0].stats, direct);
    }

    #[test]
    fn path_member_without_loader_is_an_error() {
        let mut spec = SweepSpec::base(Scale::QUICK);
        spec.mixes = vec![MixSpec {
            name: "disk".into(),
            members: vec![vex_spec::WorkloadRef::Path("nope.vexb".into())],
            seed: 1,
        }];
        let err = SweepRunner::new(&spec).run().unwrap_err();
        assert!(err.contains("no loader"), "{err}");
    }

    #[test]
    fn json_is_emitted_per_point() {
        let mut spec = small_spec();
        spec.name = "json-smoke".into();
        let outcome = SweepRunner::new(&spec).run().unwrap();
        let json = outcome.to_json();
        assert_eq!(json.matches("\"technique\"").count(), 2);
        assert!(json.contains("\"spec\": \"json-smoke\""), "{json}");
        assert!(json.contains("\"machine\": \"paper\""), "{json}");
        assert!(json.contains("\"stop\": \"inst_limit\""), "{json}");
        assert!(json.contains("\"errors\": ["), "{json}");
    }

    #[test]
    fn injected_panic_under_keep_going_fails_only_that_point() {
        let spec = small_spec();
        let plan = FaultPlan::panic_at(0);
        let outcome = SweepRunner::new(&spec)
            .fault(&plan)
            .keep_going(true)
            .run()
            .unwrap();
        assert_eq!(outcome.points.len(), 1);
        assert_eq!(outcome.errors.len(), 1);
        let e = &outcome.errors[0];
        assert!(matches!(&e.cause, PointFailure::Panic(m) if m.contains("injected panic")));
        // The failed point's lookup returns its error, the good one works.
        assert!(outcome.stats("llll", "CSMT", 2).is_err());
        assert!(outcome.stats("llll", "SMT", 2).is_ok());
    }

    #[test]
    fn fail_fast_skips_the_tail_serially() {
        let spec = small_spec();
        let plan = FaultPlan::error_at(0);
        let outcome = SweepRunner::new(&spec)
            .fault(&plan)
            .workers(1)
            .run()
            .unwrap();
        assert!(outcome.points.is_empty());
        assert_eq!(outcome.errors.len(), 2);
        assert!(matches!(outcome.errors[0].cause, PointFailure::Failed(_)));
        assert_eq!(outcome.errors[1].cause, PointFailure::Skipped);
    }

    #[test]
    fn transient_failure_is_retried_and_attempts_counted() {
        let spec = small_spec();
        let plan = FaultPlan::fail_once_at(1);
        let seen = Mutex::new(Vec::new());
        let hook = |run: &RunSpec, attempt: u32| {
            seen.lock().unwrap().push((run.label(), attempt));
        };
        let outcome = SweepRunner::new(&spec)
            .fault(&plan)
            .retries(1)
            .on_retry(&hook)
            .run()
            .unwrap();
        assert!(outcome.errors.is_empty());
        assert_eq!(outcome.points.len(), 2);
        let flaky = outcome.points.iter().find(|p| p.attempts == 2).unwrap();
        assert_eq!(seen.lock().unwrap().as_slice(), &[(flaky.run.label(), 2)]);
    }

    #[test]
    fn retries_follow_the_backoff_schedule() {
        struct Recorder(Mutex<Vec<u64>>);
        impl crate::Sleeper for Recorder {
            fn sleep(&self, d: Duration) {
                self.0.lock().unwrap().push(d.as_millis() as u64);
            }
        }

        let spec = small_spec();
        let plan = FaultPlan::fail_once_at(1);
        let policy = crate::BackoffPolicy {
            base_ms: 100,
            max_ms: 5_000,
            jitter: false,
        };
        let recorder = Recorder(Mutex::new(Vec::new()));
        let outcome = SweepRunner::new(&spec)
            .fault(&plan)
            .retries(2)
            .backoff(policy)
            .sleeper(&recorder)
            .run()
            .unwrap();
        assert!(outcome.errors.is_empty());
        // One transient failure → one retry at the policy's first delay,
        // and nothing slept for first attempts or untouched points.
        assert_eq!(recorder.0.lock().unwrap().as_slice(), &[100]);

        // The same schedule is reproducible run over run (jitter is
        // key-derived, not clocked) — rerun and compare.
        let recorder2 = Recorder(Mutex::new(Vec::new()));
        SweepRunner::new(&spec)
            .fault(&plan)
            .retries(2)
            .backoff(policy)
            .sleeper(&recorder2)
            .run()
            .unwrap();
        assert_eq!(
            recorder.0.lock().unwrap().as_slice(),
            recorder2.0.lock().unwrap().as_slice()
        );
    }

    #[test]
    fn injected_panic_is_retried_too() {
        let spec = small_spec();
        let plan = FaultPlan::panic_at(0);
        let outcome = SweepRunner::new(&spec)
            .fault(&plan)
            .retries(1)
            .run()
            .unwrap();
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert_eq!(outcome.points.len(), 2);
    }

    #[test]
    fn missing_point_lookup_is_an_error_not_a_panic() {
        let spec = small_spec();
        let outcome = SweepRunner::new(&spec).run().unwrap();
        let err = outcome.stats("llll", "OOSI NS", 2).unwrap_err();
        assert_eq!(err.cause, PointFailure::MissingPoint);
    }

    #[test]
    fn resume_without_journal_is_an_error() {
        let spec = small_spec();
        let err = SweepRunner::new(&spec).resume(true).run().unwrap_err();
        assert!(err.contains("no journal path"), "{err}");
    }
}
