//! The one sweep engine: expands a [`SweepSpec`] into deduplicated run
//! points, prepares every distinct (machine, workload-member) program
//! exactly once — compile for built-ins, a pluggable loader for `.vex` /
//! `.vexb` paths — shares each `Arc<DecodedProgram>` across all points it
//! appears in, fans the grid out over [`parallel_map`], and returns
//! structured results (with a JSON form for artifacts).
//!
//! Every sweep in the repository executes here: the figure modules,
//! the ablations, `bin/repro`, the `sim_throughput` bench and the
//! `vex sweep` CLI are all thin spec-builders over this runner.

use crate::{default_workers, parallel_map};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vex_isa::Program;
use vex_sim::{run_prepared, PreparedProgram, SimStats};
use vex_spec::{RunSpec, SweepSpec, WorkloadRef};
use vex_workloads::compile_benchmark_for;

/// Resolves a `.vex`/`.vexb` path to a program. The runner itself has no
/// parser dependency; the `vex` CLI plugs `vex_asm` in here.
pub type ProgramLoader<'a> = &'a (dyn Fn(&str) -> Result<Program, String> + Sync);

/// One simulated grid point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The fully-resolved point.
    pub run: RunSpec,
    /// Its statistics.
    pub stats: SimStats,
    /// Wall-clock seconds of the simulation itself (program preparation
    /// is shared across points and excluded).
    pub wall_secs: f64,
}

/// All results of a sweep, in expansion order (mix-major).
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The spec that was run.
    pub spec: SweepSpec,
    /// One result per deduplicated grid point.
    pub points: Vec<PointResult>,
}

impl SweepOutcome {
    /// Statistics at a grid point, matched by mix name, technique label
    /// and thread count (the first machine that matches — single-machine
    /// specs have exactly one).
    pub fn stats(&self, mix: &str, tech_label: &str, threads: u8) -> &SimStats {
        self.points
            .iter()
            .find(|p| {
                p.run.mix.name == mix
                    && p.run.technique.label() == tech_label
                    && p.run.threads == threads
            })
            .map(|p| &p.stats)
            .unwrap_or_else(|| panic!("no sweep point ({mix}, {tech_label}, {threads}T)"))
    }

    /// IPC at a grid point.
    pub fn ipc(&self, mix: &str, tech_label: &str, threads: u8) -> f64 {
        self.stats(mix, tech_label, threads).ipc()
    }

    /// Structured results as a JSON document (hand-rolled: the build
    /// environment has no serde), one object per point plus the sweep
    /// header — the artifact format CI uploads.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"spec\": \"{}\",", self.spec.name);
        let _ = writeln!(out, "  \"inst_limit\": {},", self.spec.inst_limit);
        let _ = writeln!(out, "  \"timeslice\": {},", self.spec.timeslice);
        let _ = writeln!(out, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let s = &p.stats;
            let _ = write!(
                out,
                "    {{\"mix\": \"{}\", \"technique\": \"{}\", \"threads\": {}, \
                 \"machine\": \"{}\", \"seed\": {}, \"cycles\": {}, \"ops\": {}, \
                 \"insts\": {}, \"ipc\": {:.6}, \"merged_cycles\": {}, \
                 \"empty_cycles\": {}, \"wall_secs\": {:.6}}}",
                p.run.mix.name,
                p.run.technique.label().replace(' ', "_"),
                p.run.threads,
                p.run.machine.name,
                p.run.mix.seed,
                s.cycles,
                s.total_ops,
                s.total_insts,
                s.ipc(),
                s.merged_cycles,
                s.empty_cycles,
                p.wall_secs,
            );
            let _ = writeln!(out, "{}", if i + 1 == self.points.len() { "" } else { "," });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Executes a [`SweepSpec`]. Build with [`SweepRunner::new`], optionally
/// cap [`SweepRunner::workers`] (benches use 1 for clean timing) or plug a
/// [`SweepRunner::loader`] for path workloads, then [`SweepRunner::run`].
pub struct SweepRunner<'a> {
    spec: &'a SweepSpec,
    workers: usize,
    loader: Option<ProgramLoader<'a>>,
}

impl<'a> SweepRunner<'a> {
    /// A runner over `spec` with one worker per available core.
    pub fn new(spec: &'a SweepSpec) -> Self {
        SweepRunner {
            spec,
            workers: default_workers(),
            loader: None,
        }
    }

    /// Caps the fan-out (1 = serial, for timing-sensitive callers).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Plugs in a resolver for `.vex`/`.vexb` mix members.
    pub fn loader(mut self, loader: ProgramLoader<'a>) -> Self {
        self.loader = Some(loader);
        self
    }

    /// Runs the whole grid: every distinct (machine, member) program is
    /// prepared once, then all points fan out in parallel.
    pub fn run(&self) -> Result<SweepOutcome, String> {
        let points = self.spec.expand();
        if points.is_empty() {
            return Err(format!(
                "spec `{}` expands to no run points (empty axis)",
                self.spec.name
            ));
        }

        // Prepare each distinct (machine, member) program exactly once.
        // Keyed by machine *index* because machines with identical
        // geometry were already collapsed by `expand`.
        let mut prepared: HashMap<(usize, String), PreparedProgram> = HashMap::new();
        for p in &points {
            for member in &p.mix.members {
                let key = (p.machine_index, member.as_str().to_string());
                if prepared.contains_key(&key) {
                    continue;
                }
                let machine = &p.machine.config;
                let program: Arc<Program> = match member {
                    WorkloadRef::Builtin(name) => compile_benchmark_for(name, machine)
                        .map_err(|e| format!("mix `{}`: {e}", p.mix.name))?,
                    WorkloadRef::Path(path) => {
                        let Some(loader) = self.loader else {
                            return Err(format!(
                                "mix `{}` member `{path}` is a program file but this runner \
                                 has no loader (run it through the `vex` CLI)",
                                p.mix.name
                            ));
                        };
                        let program = loader(path)?;
                        program.validate(machine).map_err(|e| {
                            format!("`{path}` does not fit machine `{}`: {e}", p.machine.name)
                        })?;
                        Arc::new(program)
                    }
                };
                prepared.insert(key, PreparedProgram::prepare(program));
            }
        }

        let jobs: Vec<_> = points
            .into_iter()
            .map(|run| {
                let workload: Vec<PreparedProgram> = run
                    .mix
                    .members
                    .iter()
                    .map(|m| prepared[&(run.machine_index, m.as_str().to_string())].clone())
                    .collect();
                move || {
                    let cfg = run.to_sim_config();
                    let start = Instant::now();
                    let stats = run_prepared(&cfg, &workload);
                    PointResult {
                        run,
                        stats,
                        wall_secs: start.elapsed().as_secs_f64(),
                    }
                }
            })
            .collect();

        let points = parallel_map(jobs, self.workers);
        Ok(SweepOutcome {
            spec: self.spec.clone(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_sim::{Scale, SimConfig, Technique};
    use vex_spec::MixSpec;

    /// A spec-driven point must be bit-identical to the same point run
    /// directly through `run_workload` (shared decode must not matter).
    #[test]
    fn runner_matches_direct_run() {
        let mut spec = SweepSpec::base(Scale {
            inst_limit: 3_000,
            timeslice: 500,
        });
        spec.techniques = vec![Technique::ccsi(vex_sim::CommPolicy::AlwaysSplit)];
        spec.threads = vec![2];
        spec.mixes = vec![MixSpec::builtin("llhh", vex_spec::DEFAULT_SEED)];
        let outcome = SweepRunner::new(&spec).run().unwrap();
        assert_eq!(outcome.points.len(), 1);

        let cfg: SimConfig = spec.expand()[0].to_sim_config();
        let programs = vex_workloads::compile_mix(
            vex_workloads::MIXES
                .iter()
                .find(|m| m.name == "llhh")
                .unwrap(),
        );
        let direct = vex_sim::run_workload(&cfg, &programs);
        assert_eq!(outcome.points[0].stats, direct);
    }

    #[test]
    fn path_member_without_loader_is_an_error() {
        let mut spec = SweepSpec::base(Scale::QUICK);
        spec.mixes = vec![MixSpec {
            name: "disk".into(),
            members: vec![vex_spec::WorkloadRef::Path("nope.vexb".into())],
            seed: 1,
        }];
        let err = SweepRunner::new(&spec).run().unwrap_err();
        assert!(err.contains("no loader"), "{err}");
    }

    #[test]
    fn json_is_emitted_per_point() {
        let mut spec = SweepSpec::base(Scale {
            inst_limit: 1_000,
            timeslice: 500,
        });
        spec.name = "json-smoke".into();
        spec.techniques = vec![Technique::csmt(), Technique::smt()];
        spec.threads = vec![2];
        spec.mixes = vec![MixSpec::builtin("llll", 7)];
        let outcome = SweepRunner::new(&spec).run().unwrap();
        let json = outcome.to_json();
        assert_eq!(json.matches("\"technique\"").count(), 2);
        assert!(json.contains("\"spec\": \"json-smoke\""), "{json}");
        assert!(json.contains("\"machine\": \"paper\""), "{json}");
    }
}
