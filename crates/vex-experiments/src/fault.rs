//! Fault-injection plan for exercising the sweep runner's isolation,
//! retry and crash-resume machinery from tests. Production sweeps never
//! construct one; the hooks cost a few `Option` checks per point.
//!
//! Faults address points by their **flat expansion index** (the order
//! `SweepSpec::expand` yields, which is also the order of
//! `SweepOutcome::points`). A *simulated crash* needs no hook here: tests
//! cut the journal file at an arbitrary byte themselves, which is exactly
//! what a real `kill -9` leaves behind.

/// Which points fail, and how.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Panic while simulating this point (first attempt only, so a retry
    /// budget also covers panics).
    pub panic_at: Option<usize>,
    /// Return a structured error from this point, on every attempt — a
    /// *permanent* failure that exhausts the retry budget.
    pub error_at: Option<usize>,
    /// Return an error from this point on the first attempt only — a
    /// *transient* failure that one retry fixes.
    pub fail_once_at: Option<usize>,
}

impl FaultPlan {
    /// A plan that panics at flat point index `i`.
    pub fn panic_at(i: usize) -> FaultPlan {
        FaultPlan {
            panic_at: Some(i),
            ..Default::default()
        }
    }

    /// A plan that permanently fails flat point index `i`.
    pub fn error_at(i: usize) -> FaultPlan {
        FaultPlan {
            error_at: Some(i),
            ..Default::default()
        }
    }

    /// A plan that transiently fails flat point index `i` (first attempt
    /// only).
    pub fn fail_once_at(i: usize) -> FaultPlan {
        FaultPlan {
            fail_once_at: Some(i),
            ..Default::default()
        }
    }
}
