//! The shared simulation grid of the figure set — now a thin view over
//! the declarative layer: [`Sweep::run`] builds the paper-grid
//! [`SweepSpec`] and executes it on the shared [`SweepRunner`], then
//! indexes the results for the figure renderers.

use crate::runner::{PointError, PointFailure, SweepRunner};
use crate::Scale;
use std::collections::HashMap;
use vex_sim::{SimStats, Technique};
use vex_spec::SweepSpec;
use vex_workloads::MIXES;

/// Key of one grid point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Point {
    /// Workload mix index into [`MIXES`].
    pub mix: usize,
    /// Technique label index into [`Technique::FIGURE16_SET`].
    pub tech: usize,
    /// Hardware threads (1, 2 or 4).
    pub threads: u8,
}

/// All simulated results for the figure set.
pub struct Sweep {
    /// The scale used.
    pub scale: Scale,
    results: HashMap<Point, SimStats>,
}

impl Sweep {
    /// Runs the whole grid: 9 mixes × 8 techniques × {2, 4} threads.
    /// The replacement-scheduler seed depends only on the mix, so every
    /// technique sees the identical timeslice schedule (fair comparison).
    pub fn run(scale: Scale) -> Result<Sweep, String> {
        let spec = SweepSpec::paper_grid(scale);
        let outcome = SweepRunner::new(&spec).run()?;
        let mut results = HashMap::new();
        for p in outcome.points {
            let tech = Technique::FIGURE16_SET
                .iter()
                .position(|&(_, t)| t == p.run.technique)
                .ok_or_else(|| format!("technique {:?} is not in FIGURE16_SET", p.run.technique))?;
            let mix = MIXES
                .iter()
                .position(|m| m.name == p.run.mix.name)
                .ok_or_else(|| format!("mix `{}` is not a paper mix", p.run.mix.name))?;
            results.insert(
                Point {
                    mix,
                    tech,
                    threads: p.run.threads,
                },
                p.stats,
            );
        }
        Ok(Sweep { scale, results })
    }

    /// IPC at a grid point.
    pub fn ipc(&self, mix: usize, tech_label: &str, threads: u8) -> Result<f64, PointError> {
        Ok(self.stats(mix, tech_label, threads)?.ipc())
    }

    /// Full statistics at a grid point. Unknown labels and unsimulated
    /// points are [`PointFailure::MissingPoint`] errors, not panics.
    pub fn stats(
        &self,
        mix: usize,
        tech_label: &str,
        threads: u8,
    ) -> Result<&SimStats, PointError> {
        let missing = |what: String| PointError {
            key: 0,
            label: what,
            attempts: 0,
            cause: PointFailure::MissingPoint,
        };
        let tech = Technique::FIGURE16_SET
            .iter()
            .position(|(l, _)| *l == tech_label)
            .ok_or_else(|| missing(format!("unknown technique label `{tech_label}`")))?;
        self.results
            .get(&Point { mix, tech, threads })
            .ok_or_else(|| missing(format!("mix#{mix}/{tech_label}/{threads}t")))
    }

    /// Geometric-mean-free average IPC across all mixes (the paper reports
    /// arithmetic averages).
    pub fn avg_ipc(&self, tech_label: &str, threads: u8) -> Result<f64, PointError> {
        let mut sum = 0.0;
        for m in 0..MIXES.len() {
            sum += self.ipc(m, tech_label, threads)?;
        }
        Ok(sum / MIXES.len() as f64)
    }
}
