//! The shared simulation grid: every (mix, technique, thread-count) point
//! simulated once, in parallel, then served to all figure renderers.

use crate::{default_workers, parallel_map, Scale};
use std::collections::HashMap;
use std::sync::Arc;
use vex_isa::Program;
use vex_sim::{MemoryMode, SimConfig, SimStats, Technique};
use vex_workloads::{compile_benchmark, Mix, MIXES};

/// Key of one grid point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Point {
    /// Workload mix index into [`MIXES`].
    pub mix: usize,
    /// Technique label index into [`Technique::figure16_set`].
    pub tech: usize,
    /// Hardware threads (1, 2 or 4).
    pub threads: u8,
}

/// All simulated results for the figure set.
pub struct Sweep {
    /// The scale used.
    pub scale: Scale,
    results: HashMap<Point, SimStats>,
}

/// Builds the simulator configuration shared by all sweep points.
pub fn sim_config(technique: Technique, threads: u8, scale: Scale, seed: u64) -> SimConfig {
    SimConfig {
        technique,
        n_threads: threads,
        renaming: true,
        memory: MemoryMode::Real,
        timeslice: scale.timeslice,
        inst_limit: scale.inst_limit,
        max_cycles: 2_000_000_000,
        seed,
        mt_mode: vex_sim::MtMode::Simultaneous,
        respawn: true,
        machine: vex_isa::MachineConfig::paper_4c4w(),
    }
}

impl Sweep {
    /// Runs the whole grid: 9 mixes × 8 techniques × {2, 4} threads.
    /// The replacement-scheduler seed depends only on the mix, so every
    /// technique sees the identical timeslice schedule (fair comparison).
    pub fn run(scale: Scale) -> Sweep {
        let techniques = Technique::figure16_set();
        // Compile each distinct benchmark once.
        let mut programs: HashMap<&'static str, Arc<Program>> = HashMap::new();
        for mix in MIXES {
            for name in mix.members {
                programs
                    .entry(name)
                    .or_insert_with(|| compile_benchmark(name));
            }
        }

        let mut points = Vec::new();
        for (mi, _mix) in MIXES.iter().enumerate() {
            for ti in 0..techniques.len() {
                for &threads in &[2u8, 4] {
                    points.push(Point {
                        mix: mi,
                        tech: ti,
                        threads,
                    });
                }
            }
        }

        let jobs: Vec<_> = points
            .iter()
            .map(|&p| {
                let mix: &Mix = &MIXES[p.mix];
                let progs: Vec<Arc<Program>> = mix
                    .members
                    .iter()
                    .map(|n| Arc::clone(&programs[n]))
                    .collect();
                let tech = techniques[p.tech].1;
                move || {
                    let cfg = sim_config(tech, p.threads, scale, 0x5EED_0000 + p.mix as u64);
                    vex_sim::run_workload(&cfg, &progs)
                }
            })
            .collect();

        let stats = parallel_map(jobs, default_workers());
        let results = points.into_iter().zip(stats).collect();
        Sweep { scale, results }
    }

    /// IPC at a grid point.
    pub fn ipc(&self, mix: usize, tech_label: &str, threads: u8) -> f64 {
        self.stats(mix, tech_label, threads).ipc()
    }

    /// Full statistics at a grid point.
    pub fn stats(&self, mix: usize, tech_label: &str, threads: u8) -> &SimStats {
        let techniques = Technique::figure16_set();
        let tech = techniques
            .iter()
            .position(|(l, _)| *l == tech_label)
            .unwrap_or_else(|| panic!("unknown technique label {tech_label}"));
        self.results
            .get(&Point { mix, tech, threads })
            .expect("grid point simulated")
    }

    /// Geometric-mean-free average IPC across all mixes (the paper reports
    /// arithmetic averages).
    pub fn avg_ipc(&self, tech_label: &str, threads: u8) -> f64 {
        let n = MIXES.len() as f64;
        (0..MIXES.len())
            .map(|m| self.ipc(m, tech_label, threads))
            .sum::<f64>()
            / n
    }
}
