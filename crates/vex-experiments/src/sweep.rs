//! The shared simulation grid of the figure set — now a thin view over
//! the declarative layer: [`Sweep::run`] builds the paper-grid
//! [`SweepSpec`] and executes it on the shared [`SweepRunner`], then
//! indexes the results for the figure renderers.

use crate::runner::SweepRunner;
use crate::Scale;
use std::collections::HashMap;
use vex_sim::{SimStats, Technique};
use vex_spec::SweepSpec;
use vex_workloads::MIXES;

/// Key of one grid point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Point {
    /// Workload mix index into [`MIXES`].
    pub mix: usize,
    /// Technique label index into [`Technique::FIGURE16_SET`].
    pub tech: usize,
    /// Hardware threads (1, 2 or 4).
    pub threads: u8,
}

/// All simulated results for the figure set.
pub struct Sweep {
    /// The scale used.
    pub scale: Scale,
    results: HashMap<Point, SimStats>,
}

impl Sweep {
    /// Runs the whole grid: 9 mixes × 8 techniques × {2, 4} threads.
    /// The replacement-scheduler seed depends only on the mix, so every
    /// technique sees the identical timeslice schedule (fair comparison).
    pub fn run(scale: Scale) -> Sweep {
        let spec = SweepSpec::paper_grid(scale);
        let outcome = SweepRunner::new(&spec)
            .run()
            .expect("paper grid must be runnable");
        let results = outcome
            .points
            .into_iter()
            .map(|p| {
                let tech = Technique::FIGURE16_SET
                    .iter()
                    .position(|&(_, t)| t == p.run.technique)
                    .expect("grid technique");
                let mix = MIXES
                    .iter()
                    .position(|m| m.name == p.run.mix.name)
                    .expect("grid mix");
                (
                    Point {
                        mix,
                        tech,
                        threads: p.run.threads,
                    },
                    p.stats,
                )
            })
            .collect();
        Sweep { scale, results }
    }

    /// IPC at a grid point.
    pub fn ipc(&self, mix: usize, tech_label: &str, threads: u8) -> f64 {
        self.stats(mix, tech_label, threads).ipc()
    }

    /// Full statistics at a grid point.
    pub fn stats(&self, mix: usize, tech_label: &str, threads: u8) -> &SimStats {
        let tech = Technique::FIGURE16_SET
            .iter()
            .position(|(l, _)| *l == tech_label)
            .unwrap_or_else(|| panic!("unknown technique label {tech_label}"));
        self.results
            .get(&Point { mix, tech, threads })
            .expect("grid point simulated")
    }

    /// Geometric-mean-free average IPC across all mixes (the paper reports
    /// arithmetic averages).
    pub fn avg_ipc(&self, tech_label: &str, threads: u8) -> f64 {
        let n = MIXES.len() as f64;
        (0..MIXES.len())
            .map(|m| self.ipc(m, tech_label, threads))
            .sum::<f64>()
            / n
    }
}
