//! # vex-experiments — regenerating the paper's evaluation
//!
//! One module per figure of Gupta et al. (IPDPS-W 2010) §VI, plus the
//! ablation studies (their spec shapes are catalogued in `docs/SPECS.md`):
//!
//! * [`fig13`] — the benchmark characterisation table (IPCr / IPCp),
//! * [`fig14`] — CCSI speedups over CSMT (cluster-level merging),
//! * [`fig15`] — COSI and OOSI speedups over SMT (operation-level merging),
//! * [`fig16`] — absolute IPC of all eight techniques,
//! * [`ablate`] — cluster renaming, communication-split and timeslice
//!   sensitivity studies.
//!
//! Every module is a thin builder of declarative `vex_spec::SweepSpec`
//! values executed by the shared [`runner::SweepRunner`], which prepares
//! each distinct (machine, program) pair once and fans the grid out over
//! OS threads with `std::thread::scope`. The figure renderers consume a
//! [`sweep::Sweep`] view over the paper grid so each (mix, technique,
//! thread-count) point is simulated exactly once. Absolute IPC values will
//! not match a 2010 ST200-class testbed, but the *shape* — who wins, by
//! what factor, where NS hurts — is the reproduction target (see
//! `docs/PERF.md` for how the simulator's own throughput is tracked).

#![warn(missing_docs)]

pub mod ablate;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod runner;
pub mod sweep;
pub mod table;

pub use runner::{PointResult, SweepOutcome, SweepRunner};
/// The run-scale presets now live in `vex-sim` next to `SimConfig` (one
/// source of truth for instruction budgets and timeslices); re-exported
/// here for the experiment-facing API.
pub use vex_sim::Scale;

/// Runs `jobs` closures on up to `workers` OS threads, preserving output
/// order. Used to fan the simulation grid out across cores.
pub fn parallel_map<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = jobs.len();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().unwrap();
                *results[i].lock().unwrap() = Some(job());
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.into_inner().unwrap().expect("job ran"))
        .collect()
}

/// Number of worker threads to use for sweeps.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 2).collect();
        let out = parallel_map(jobs, 8);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }
}
