//! # vex-experiments — regenerating the paper's evaluation
//!
//! One module per figure of Gupta et al. (IPDPS-W 2010) §VI, plus the
//! ablations called out in DESIGN.md:
//!
//! * [`fig13`] — the benchmark characterisation table (IPCr / IPCp),
//! * [`fig14`] — CCSI speedups over CSMT (cluster-level merging),
//! * [`fig15`] — COSI and OOSI speedups over SMT (operation-level merging),
//! * [`fig16`] — absolute IPC of all eight techniques,
//! * [`ablate`] — cluster renaming, communication-split and timeslice
//!   sensitivity studies.
//!
//! All figures consume a shared [`sweep::Sweep`] so each (mix, technique,
//! thread-count) point is simulated exactly once; runs fan out over OS
//! threads with `std::thread::scope`. Absolute IPC values will not match a
//! 2010 ST200-class testbed, but the *shape* — who wins, by what factor,
//! where NS hurts — is the reproduction target (see EXPERIMENTS.md).

#![warn(missing_docs)]

pub mod ablate;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod sweep;
pub mod table;

/// Scale of an experiment run (the paper uses 200M instructions and 5M
/// cycle timeslices; we scale down proportionally).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Per-benchmark instruction budget terminating a run.
    pub inst_limit: u64,
    /// Timeslice length in cycles.
    pub timeslice: u64,
}

impl Scale {
    /// Quick runs for smoke tests and Criterion benches.
    pub const QUICK: Scale = Scale {
        inst_limit: 40_000,
        timeslice: 10_000,
    };
    /// Default scale: stable IPC, seconds per figure.
    pub const DEFAULT: Scale = Scale {
        inst_limit: 150_000,
        timeslice: 25_000,
    };
    /// Closer to the paper's ratios (slower).
    pub const FULL: Scale = Scale {
        inst_limit: 600_000,
        timeslice: 100_000,
    };
}

/// Runs `jobs` closures on up to `workers` OS threads, preserving output
/// order. Used to fan the simulation grid out across cores.
pub fn parallel_map<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = jobs.len();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().unwrap().take().unwrap();
                *results[i].lock().unwrap() = Some(job());
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.into_inner().unwrap().expect("job ran"))
        .collect()
}

/// Number of worker threads to use for sweeps.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 2).collect();
        let out = parallel_map(jobs, 8);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }
}
