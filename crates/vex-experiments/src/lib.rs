//! # vex-experiments — regenerating the paper's evaluation
//!
//! One module per figure of Gupta et al. (IPDPS-W 2010) §VI, plus the
//! ablation studies (their spec shapes are catalogued in `docs/SPECS.md`):
//!
//! * [`fig13`] — the benchmark characterisation table (IPCr / IPCp),
//! * [`fig14`] — CCSI speedups over CSMT (cluster-level merging),
//! * [`fig15`] — COSI and OOSI speedups over SMT (operation-level merging),
//! * [`fig16`] — absolute IPC of all eight techniques,
//! * [`ablate`] — cluster renaming, communication-split and timeslice
//!   sensitivity studies.
//!
//! Every module is a thin builder of declarative `vex_spec::SweepSpec`
//! values executed by the shared [`runner::SweepRunner`], which prepares
//! each distinct (machine, program) pair once and fans the grid out over
//! OS threads with `std::thread::scope`. The figure renderers consume a
//! [`sweep::Sweep`] view over the paper grid so each (mix, technique,
//! thread-count) point is simulated exactly once. Absolute IPC values will
//! not match a 2010 ST200-class testbed, but the *shape* — who wins, by
//! what factor, where NS hurts — is the reproduction target (see
//! `docs/PERF.md` for how the simulator's own throughput is tracked).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablate;
pub mod backoff;
pub mod fault;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod jobs;
pub mod journal;
pub mod runner;
pub mod sweep;
pub mod table;

pub use backoff::{BackoffPolicy, NoSleep, OsSleeper, Sleeper};
pub use fault::FaultPlan;
pub use jobs::{prepare_programs, single_point_spec, spec_point_keys};
pub use journal::{
    point_key, program_digest, sync_parent_dir, Journal, JournalEntry, LockGuard, ReplayReport,
};
pub use runner::{PointError, PointFailure, PointResult, SweepOutcome, SweepRunner};
/// The run-scale presets now live in `vex-sim` next to `SimConfig` (one
/// source of truth for instruction budgets and timeslices); re-exported
/// here for the experiment-facing API.
pub use vex_sim::Scale;

/// Outcome of one job under [`parallel_map_isolated`].
pub enum JobStatus<T, E> {
    /// The job returned a value.
    Done(T),
    /// The job returned an error.
    Failed(E),
    /// The job panicked; the payload is what `catch_unwind` caught
    /// (readable via [`panic_message`]).
    Panicked(Box<dyn std::any::Any + Send>),
    /// The job never ran: an earlier failure aborted the map first
    /// (fail-fast mode only).
    Skipped,
}

/// Locks a mutex even if a previous holder panicked — the protected data
/// here (job slots, result slots) is only ever whole values, so a poison
/// marker carries no information worth dying for.
pub(crate) fn lock_clean<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs fallible `jobs` on up to `workers` OS threads with per-job fault
/// isolation: a panicking job is caught and recorded, never allowed to
/// poison shared state or tear down sibling jobs. Output order matches
/// input order. With `fail_fast`, the first non-`Done` outcome stops new
/// jobs from starting (already-running ones finish); the untouched tail
/// comes back as [`JobStatus::Skipped`].
pub fn parallel_map_isolated<T, E, F>(
    jobs: Vec<F>,
    workers: usize,
    fail_fast: bool,
) -> Vec<JobStatus<T, E>>
where
    T: Send,
    E: Send,
    F: FnOnce() -> Result<T, E> + Send,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = jobs.len();
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<JobStatus<T, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if abort.load(Ordering::SeqCst) {
                    *lock_clean(&results[i]) = Some(JobStatus::Skipped);
                    continue;
                }
                let job = lock_clean(&jobs[i])
                    .take()
                    .expect("each job index is claimed exactly once");
                let status = match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(Ok(v)) => JobStatus::Done(v),
                    Ok(Err(e)) => JobStatus::Failed(e),
                    Err(payload) => JobStatus::Panicked(payload),
                };
                if fail_fast && !matches!(status, JobStatus::Done(_)) {
                    abort.store(true, Ordering::SeqCst);
                }
                *lock_clean(&results[i]) = Some(status);
            });
        }
    });

    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every index was claimed")
        })
        .collect()
}

/// Best-effort text of a caught panic payload (`panic!` with a string
/// literal or a formatted message covers everything in this codebase).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs infallible `jobs` on up to `workers` OS threads, preserving output
/// order. A panic in any job is re-raised here (the first one in input
/// order), after every already-started job has finished — same observable
/// behaviour as before isolation existed, minus the lock poisoning.
pub fn parallel_map<T, F>(jobs: Vec<F>, workers: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let jobs: Vec<_> = jobs
        .into_iter()
        .map(|j| move || Ok::<T, std::convert::Infallible>(j()))
        .collect();
    let mut out = Vec::new();
    for status in parallel_map_isolated(jobs, workers, true) {
        match status {
            JobStatus::Done(v) => out.push(v),
            JobStatus::Panicked(payload) => std::panic::resume_unwind(payload),
            JobStatus::Failed(e) => match e {},
            // Jobs are claimed in index order, so a skipped index is
            // always preceded by the failure that caused it — the
            // `resume_unwind` above fires first.
            JobStatus::Skipped => unreachable!("skip without a preceding panic"),
        }
    }
    out
}

/// Number of worker threads to use for sweeps.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 2).collect();
        let out = parallel_map(jobs, 8);
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_reraises_job_panics() {
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom in job 1")),
            Box::new(|| 3),
        ];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parallel_map(jobs, 2)))
            .unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "boom in job 1");
    }

    #[test]
    fn isolated_map_keeps_going_and_records_each_failure() {
        let jobs: Vec<Box<dyn FnOnce() -> Result<i32, String> + Send>> = vec![
            Box::new(|| Ok(10)),
            Box::new(|| panic!("pow")),
            Box::new(|| Err("nope".to_string())),
            Box::new(|| Ok(40)),
        ];
        let out = parallel_map_isolated(jobs, 2, false);
        assert!(matches!(out[0], JobStatus::Done(10)));
        assert!(matches!(&out[1], JobStatus::Panicked(p) if panic_message(p.as_ref()) == "pow"));
        assert!(matches!(&out[2], JobStatus::Failed(e) if e == "nope"));
        assert!(matches!(out[3], JobStatus::Done(40)));
    }

    #[test]
    fn isolated_map_fail_fast_skips_the_tail() {
        // Serial worker so the claim order is fully deterministic.
        let jobs: Vec<Box<dyn FnOnce() -> Result<i32, String> + Send>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| Err("stop here".to_string())),
            Box::new(|| Ok(3)),
            Box::new(|| Ok(4)),
        ];
        let out = parallel_map_isolated(jobs, 1, true);
        assert!(matches!(out[0], JobStatus::Done(1)));
        assert!(matches!(&out[1], JobStatus::Failed(e) if e == "stop here"));
        assert!(matches!(out[2], JobStatus::Skipped));
        assert!(matches!(out[3], JobStatus::Skipped));
    }
}
