//! Retry pacing: truncated exponential backoff with deterministic jitter.
//!
//! Both retry paths — [`SweepRunner::retries`](crate::SweepRunner::retries)
//! inside one process and the sweep service's requeue of crashed points —
//! share this policy, so a point that fails repeatedly is re-attempted on
//! the same schedule no matter which layer drives it.
//!
//! The jitter is *deterministic*: it is derived by hashing the point's
//! content-addressed key with the attempt number, not from a clock or an
//! RNG. Retries therefore de-synchronize across points (different keys
//! get different jitter) while every run of the same spec produces the
//! same schedule — which keeps the crash-equivalence tests reproducible
//! and `deterministic_wall` byte-identical.

use crate::journal::Fnv64;
use std::time::Duration;

/// Truncated exponential backoff: attempt `n` (2 = first retry) waits
/// `base_ms << (n-2)` capped at `max_ms`, plus up to half that again of
/// deterministic jitter when `jitter` is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Ceiling on the un-jittered delay, in milliseconds.
    pub max_ms: u64,
    /// Add up to `delay/2` of key-derived jitter.
    pub jitter: bool,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 100,
            max_ms: 5_000,
            jitter: true,
        }
    }
}

impl BackoffPolicy {
    /// A policy with no waiting at all (tests, or operators who want the
    /// pre-backoff immediate-retry behaviour).
    pub fn none() -> BackoffPolicy {
        BackoffPolicy {
            base_ms: 0,
            max_ms: 0,
            jitter: false,
        }
    }

    /// Delay in milliseconds before running `attempt` (1-based; attempt 1
    /// is the first try and never waits) of the point identified by `key`.
    pub fn delay_ms(&self, key: u64, attempt: u32) -> u64 {
        if attempt <= 1 || self.base_ms == 0 {
            return 0;
        }
        let exp = (attempt - 2).min(32);
        let delay = self
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_ms.max(self.base_ms));
        if !self.jitter || delay == 0 {
            return delay;
        }
        // Key- and attempt-derived jitter in [0, delay/2]: deterministic,
        // but different per point, so a crashed batch doesn't thunder
        // back in lockstep.
        let mut h = Fnv64::new();
        h.update(&key.to_le_bytes());
        h.update(&attempt.to_le_bytes());
        delay + h.finish() % (delay / 2 + 1)
    }
}

/// Injectable clock for retry pacing. Production uses [`OsSleeper`];
/// tests substitute a recorder so schedules are asserted, not waited on.
pub trait Sleeper: Sync {
    /// Blocks the calling worker for `d`.
    fn sleep(&self, d: Duration);
}

/// Real wall-clock sleeping via `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsSleeper;

impl Sleeper for OsSleeper {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A sleeper that never sleeps (deterministic tests).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSleep;

impl Sleeper for NoSleep {
    fn sleep(&self, _d: Duration) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_never_waits() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_ms(0xabc, 1), 0);
        assert_eq!(p.delay_ms(0xabc, 0), 0);
    }

    #[test]
    fn unjittered_delays_double_then_cap() {
        let p = BackoffPolicy {
            base_ms: 100,
            max_ms: 450,
            jitter: false,
        };
        assert_eq!(p.delay_ms(1, 2), 100);
        assert_eq!(p.delay_ms(1, 3), 200);
        assert_eq!(p.delay_ms(1, 4), 400);
        assert_eq!(p.delay_ms(1, 5), 450); // capped
        assert_eq!(p.delay_ms(1, 40), 450); // shift saturates safely
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = BackoffPolicy {
            base_ms: 100,
            max_ms: 5_000,
            jitter: true,
        };
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            for attempt in 2..8 {
                let base = BackoffPolicy { jitter: false, ..p }.delay_ms(key, attempt);
                let d = p.delay_ms(key, attempt);
                assert!(d >= base && d <= base + base / 2, "key={key} a={attempt}");
                assert_eq!(d, p.delay_ms(key, attempt), "deterministic");
            }
        }
    }

    #[test]
    fn distinct_keys_desynchronize() {
        let p = BackoffPolicy::default();
        let delays: Vec<u64> = (0u64..16).map(|k| p.delay_ms(k, 2)).collect();
        let distinct: std::collections::HashSet<_> = delays.iter().collect();
        assert!(distinct.len() > 1, "jitter must vary by key: {delays:?}");
    }

    #[test]
    fn none_policy_is_all_zero() {
        let p = BackoffPolicy::none();
        for attempt in 0..10 {
            assert_eq!(p.delay_ms(7, attempt), 0);
        }
    }
}
