//! Figure 14: speedup of CCSI (cluster-level split-issue with
//! cluster-level merging) over the CSMT baseline, for the NS and AS
//! communication policies, on 2- and 4-thread machines, across the nine
//! workload mixes.
//!
//! Paper reference points (§VI-B): NS averages +6.1% (2T) / +3.5% (4T);
//! AS averages +8.7% (2T) / +7.5% (4T); peaks ≈ +15% (llll, 2T NS) and
//! ≈ +20% (mmhh, 2T AS).

use crate::sweep::Sweep;
use crate::table::{pct, Table};
use vex_sim::speedup_pct;
use vex_workloads::MIXES;

/// Speedup series for one thread count.
#[derive(Clone, Debug)]
pub struct Series {
    /// Hardware threads.
    pub threads: u8,
    /// Per-mix CCSI-NS speedup over CSMT (%).
    pub ns: Vec<f64>,
    /// Per-mix CCSI-AS speedup over CSMT (%).
    pub asplit: Vec<f64>,
}

impl Series {
    /// Average over mixes.
    pub fn avg_ns(&self) -> f64 {
        self.ns.iter().sum::<f64>() / self.ns.len() as f64
    }
    /// Average over mixes.
    pub fn avg_as(&self) -> f64 {
        self.asplit.iter().sum::<f64>() / self.asplit.len() as f64
    }
}

/// Computes both thread-count series from a sweep.
pub fn run(sweep: &Sweep) -> Result<Vec<Series>, String> {
    [2u8, 4]
        .iter()
        .map(|&threads| {
            let mut ns = Vec::new();
            let mut asplit = Vec::new();
            for m in 0..MIXES.len() {
                let base = sweep.ipc(m, "CSMT", threads)?;
                ns.push(speedup_pct(base, sweep.ipc(m, "CCSI NS", threads)?));
                asplit.push(speedup_pct(base, sweep.ipc(m, "CCSI AS", threads)?));
            }
            Ok(Series {
                threads,
                ns,
                asplit,
            })
        })
        .collect()
}

/// Renders the figure as a table (mix rows, NS/AS columns per machine).
pub fn render(series: &[Series]) -> String {
    let mut t = Table::new(&["Mix", "2T NS", "2T AS", "4T NS", "4T AS"]);
    let s2 = &series[0];
    let s4 = &series[1];
    for (m, mix) in MIXES.iter().enumerate() {
        t.row(vec![
            mix.name.to_string(),
            pct(s2.ns[m]),
            pct(s2.asplit[m]),
            pct(s4.ns[m]),
            pct(s4.asplit[m]),
        ]);
    }
    t.row(vec![
        "avg".to_string(),
        pct(s2.avg_ns()),
        pct(s2.avg_as()),
        pct(s4.avg_ns()),
        pct(s4.avg_as()),
    ]);
    format!(
        "## Figure 14: CCSI speedup over CSMT (%)\n\
         (paper averages: 2T NS +6.1, 2T AS +8.7, 4T NS +3.5, 4T AS +7.5)\n\n{}",
        t.render()
    )
}
