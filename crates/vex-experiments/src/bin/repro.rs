//! `repro` — regenerates the paper's figures from the command line.
//!
//! ```text
//! repro [--quick|--full] [fig13|fig14|fig15|fig16|ablate|all]
//! ```

use vex_experiments::{ablate, fig13, fig14, fig15, fig16, sweep::Sweep, Scale};

fn main() {
    if let Err(e) = real_main() {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::DEFAULT;
    let mut cmds: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => scale = Scale::QUICK,
            "--full" => scale = Scale::FULL,
            "--help" | "-h" => {
                eprintln!("usage: repro [--quick|--full] [fig13|fig14|fig15|fig16|ablate|all]");
                return Ok(());
            }
            c => cmds.push(c.to_string()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".to_string());
    }

    let wants = |c: &str| cmds.iter().any(|x| x == c || x == "all");
    let t0 = std::time::Instant::now();

    if wants("fig13") {
        let rows = fig13::run(scale)?;
        println!("{}", fig13::render(&rows));
    }

    if wants("fig14") || wants("fig15") || wants("fig16") {
        eprintln!("[repro] running the mix/technique sweep...");
        let sweep = Sweep::run(scale)?;
        if wants("fig14") {
            println!("{}", fig14::render(&fig14::run(&sweep)?));
        }
        if wants("fig15") {
            println!("{}", fig15::render(&fig15::run(&sweep)?));
        }
        if wants("fig16") {
            println!("{}", fig16::render(&fig16::run(&sweep)?));
        }
    }

    if wants("ablate") {
        println!("{}", ablate::renaming(scale)?);
        println!("{}", ablate::comm_split(scale)?);
        println!("{}", ablate::timeslice(scale)?);
        println!("{}", ablate::thread_scaling(scale)?);
        println!("{}", ablate::mt_modes(scale)?);
    }

    eprintln!("[repro] done in {:.1}s", t0.elapsed().as_secs_f32());
    Ok(())
}
