//! Figure 16: absolute average IPC of every multithreading technique on
//! 2- and 4-thread machines.
//!
//! Shape targets from the paper: CCSI AS ≈ SMT on the 2-thread machine
//! (slightly better, in fact), and split-issue shrinking the CSMT→SMT gap
//! on the 4-thread machine from ~27% to ~13%.

use crate::sweep::Sweep;
use crate::table::{f2, Table};
use vex_sim::Technique;

/// Average IPC for each technique at each thread count.
#[derive(Clone, Debug)]
pub struct Results {
    /// Technique display labels in the paper's order.
    pub labels: Vec<&'static str>,
    /// Average IPC on the 2-thread machine, per label.
    pub ipc2: Vec<f64>,
    /// Average IPC on the 4-thread machine, per label.
    pub ipc4: Vec<f64>,
}

/// Computes the averages from a sweep.
pub fn run(sweep: &Sweep) -> Result<Results, String> {
    let labels: Vec<&'static str> = Technique::FIGURE16_SET.iter().map(|(l, _)| *l).collect();
    let ipc2 = labels
        .iter()
        .map(|l| sweep.avg_ipc(l, 2).map_err(String::from))
        .collect::<Result<_, _>>()?;
    let ipc4 = labels
        .iter()
        .map(|l| sweep.avg_ipc(l, 4).map_err(String::from))
        .collect::<Result<_, _>>()?;
    Ok(Results { labels, ipc2, ipc4 })
}

impl Results {
    /// IPC by label and thread count.
    pub fn ipc(&self, label: &str, threads: u8) -> f64 {
        let i = self
            .labels
            .iter()
            .position(|l| *l == label)
            .expect("known label");
        match threads {
            2 => self.ipc2[i],
            4 => self.ipc4[i],
            _ => panic!("figure 16 covers 2 and 4 threads"),
        }
    }
}

/// Renders the figure as a table.
pub fn render(r: &Results) -> String {
    let mut t = Table::new(&["Technique", "IPC 2T", "IPC 4T"]);
    for (i, l) in r.labels.iter().enumerate() {
        t.row(vec![(*l).to_string(), f2(r.ipc2[i]), f2(r.ipc4[i])]);
    }
    let gap = |a: f64, b: f64| (b / a - 1.0) * 100.0;
    let csmt4 = r.ipc("CSMT", 4);
    let smt4 = r.ipc("SMT", 4);
    let ccsi4 = r.ipc("CCSI AS", 4);
    format!(
        "## Figure 16: absolute performance of all techniques\n\n{}\n\
         CSMT->SMT gap at 4T: {:+.1}%  |  CCSI AS->SMT gap at 4T: {:+.1}%\n\
         (paper: split-issue shrinks the gap from ~27% to ~13%)\n",
        t.render(),
        gap(csmt4, smt4),
        gap(ccsi4, smt4),
    )
}
