//! Figure 13(a): benchmark characterisation — IPC with real memory (IPCr)
//! and perfect memory (IPCp) on the single-threaded 16-issue machine,
//! side by side with the paper's numbers.

use crate::runner::SweepRunner;
use crate::table::{f2, Table};
use crate::Scale;
use vex_sim::{MemoryMode, Technique};
use vex_spec::{MixSpec, SweepSpec};
use vex_workloads::BENCHMARKS;

/// One benchmark's measured and reference numbers.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// ILP class letter.
    pub class: char,
    /// Measured IPC, real memory.
    pub ipcr: f64,
    /// Measured IPC, perfect memory.
    pub ipcp: f64,
    /// Paper IPCr.
    pub paper_ipcr: f64,
    /// Paper IPCp.
    pub paper_ipcp: f64,
}

/// The characterisation spec: every benchmark alone on the single-thread
/// 16-issue machine, CSMT, no renaming, no timeslice switching.
fn spec(scale: Scale, memory: MemoryMode) -> SweepSpec {
    let mut s = SweepSpec::base(scale);
    s.name = "fig13-characterisation".to_string();
    s.techniques = vec![Technique::csmt()];
    s.threads = vec![1];
    s.renaming = false;
    s.memory = memory;
    s.timeslice = u64::MAX;
    s.mixes = BENCHMARKS
        .iter()
        .map(|b| MixSpec::single(b.name, 7))
        .collect();
    s
}

/// Runs the characterisation at the given scale.
pub fn run(scale: Scale) -> Result<Vec<Row>, String> {
    // The memory mode is a spec scalar, so the two 12-point sweeps are
    // separate runner invocations; overlap them so the combined fan-out
    // still fills machines with more cores than benchmarks.
    let real_spec = spec(scale, MemoryMode::Real);
    let perfect_spec = spec(scale, MemoryMode::Perfect);
    let (real, perfect) = std::thread::scope(|s| {
        let perfect = s.spawn(|| SweepRunner::new(&perfect_spec).run());
        let real = SweepRunner::new(&real_spec).run();
        (
            real,
            perfect
                .join()
                .unwrap_or_else(|p| Err(crate::panic_message(p.as_ref()))),
        )
    });
    let (real, perfect) = (real?, perfect?);

    BENCHMARKS
        .iter()
        .map(|b| {
            Ok(Row {
                name: b.name,
                class: b.ilp.letter(),
                ipcr: real.ipc(b.name, "CSMT", 1)?,
                ipcp: perfect.ipc(b.name, "CSMT", 1)?,
                paper_ipcr: b.paper_ipcr,
                paper_ipcp: b.paper_ipcp,
            })
        })
        .collect()
}

/// Renders the table in the paper's layout plus measured columns.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "Benchmark",
        "ILP",
        "IPCr (paper)",
        "IPCr (ours)",
        "IPCp (paper)",
        "IPCp (ours)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            r.class.to_string(),
            f2(r.paper_ipcr),
            f2(r.ipcr),
            f2(r.paper_ipcp),
            f2(r.ipcp),
        ]);
    }
    format!(
        "## Figure 13(a): benchmark IPC characterisation\n\n{}",
        t.render()
    )
}
