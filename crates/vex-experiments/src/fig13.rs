//! Figure 13(a): benchmark characterisation — IPC with real memory (IPCr)
//! and perfect memory (IPCp) on the single-threaded 16-issue machine,
//! side by side with the paper's numbers.

use crate::table::{f2, Table};
use crate::{default_workers, parallel_map, Scale};
use vex_sim::{MemoryMode, SimConfig, Technique};
use vex_workloads::{compile_benchmark, BENCHMARKS};

/// One benchmark's measured and reference numbers.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: &'static str,
    /// ILP class letter.
    pub class: char,
    /// Measured IPC, real memory.
    pub ipcr: f64,
    /// Measured IPC, perfect memory.
    pub ipcp: f64,
    /// Paper IPCr.
    pub paper_ipcr: f64,
    /// Paper IPCp.
    pub paper_ipcp: f64,
}

/// Runs the characterisation at the given scale.
pub fn run(scale: Scale) -> Vec<Row> {
    let jobs: Vec<_> = BENCHMARKS
        .iter()
        .flat_map(|b| {
            [MemoryMode::Real, MemoryMode::Perfect].map(|mem| {
                move || {
                    let program = compile_benchmark(b.name);
                    let cfg = SimConfig {
                        technique: Technique::csmt(),
                        n_threads: 1,
                        renaming: false,
                        memory: mem,
                        timeslice: u64::MAX,
                        inst_limit: scale.inst_limit,
                        max_cycles: 2_000_000_000,
                        seed: 7,
                        mt_mode: vex_sim::MtMode::Simultaneous,
                        respawn: true,
                        machine: vex_isa::MachineConfig::paper_4c4w(),
                    };
                    vex_sim::run_workload(&cfg, &[program]).ipc()
                }
            })
        })
        .collect();
    let ipcs = parallel_map(jobs, default_workers());

    BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| Row {
            name: b.name,
            class: b.ilp.letter(),
            ipcr: ipcs[2 * i],
            ipcp: ipcs[2 * i + 1],
            paper_ipcr: b.paper_ipcr,
            paper_ipcp: b.paper_ipcp,
        })
        .collect()
}

/// Renders the table in the paper's layout plus measured columns.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "Benchmark",
        "ILP",
        "IPCr (paper)",
        "IPCr (ours)",
        "IPCp (paper)",
        "IPCp (ours)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.to_string(),
            r.class.to_string(),
            f2(r.paper_ipcr),
            f2(r.ipcr),
            f2(r.paper_ipcp),
            f2(r.ipcp),
        ]);
    }
    format!(
        "## Figure 13(a): benchmark IPC characterisation\n\n{}",
        t.render()
    )
}
