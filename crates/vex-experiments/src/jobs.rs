//! The reusable job model shared by the in-process [`SweepRunner`]
//! (crate::SweepRunner) and the `vex serve` sweep service: program
//! preparation + content-addressed point keys, and the single-point spec
//! conversion the service uses as its assignment wire format.
//!
//! The unit of work everywhere is a *point job*: one [`RunSpec`] plus its
//! FNV-64 [`point_key`](crate::point_key), which hashes every
//! result-affecting field and the member programs' compiled digests. The
//! key is what makes work distributable: any process that expands the
//! same spec against the same programs derives the same keys, so results
//! can be cached, journaled and exchanged between processes without
//! trusting anything but the key.

use crate::journal::{point_key, program_digest};
use crate::runner::ProgramLoader;
use std::collections::HashMap;
use vex_sim::PreparedProgram;
use vex_spec::{RunSpec, SweepSpec, WorkloadRef};
use vex_workloads::compile_benchmark_for;

/// Every distinct (machine index, member name) program of a spec, mapped
/// to its prepared form and compiled digest — the shared input of
/// [`key_of`] and workload assembly.
pub type PreparedMap = HashMap<(usize, String), (PreparedProgram, u64)>;

/// Prepares every distinct (machine index, member) program of `points`
/// exactly once: compiled for built-ins, resolved through `loader` for
/// `.vex`/`.vexb` paths (an error if a path member appears and no loader
/// is plugged in). Returns the prepared program and its digest, keyed for
/// lookup from any point.
pub fn prepare_programs(
    points: &[RunSpec],
    loader: Option<ProgramLoader<'_>>,
) -> Result<PreparedMap, String> {
    let mut prepared: PreparedMap = HashMap::new();
    for p in points {
        for member in &p.mix.members {
            let key = (p.machine_index, member.as_str().to_string());
            if prepared.contains_key(&key) {
                continue;
            }
            let machine = &p.machine.config;
            let program: std::sync::Arc<vex_isa::Program> = match member {
                WorkloadRef::Builtin(name) => compile_benchmark_for(name, machine)
                    .map_err(|e| format!("mix `{}`: {e}", p.mix.name))?,
                WorkloadRef::Path(path) => {
                    let Some(loader) = loader else {
                        return Err(format!(
                            "mix `{}` member `{path}` is a program file but this runner \
                             has no loader (run it through the `vex` CLI)",
                            p.mix.name
                        ));
                    };
                    let program = loader(path)?;
                    program.validate(machine).map_err(|e| {
                        format!("`{path}` does not fit machine `{}`: {e}", p.machine.name)
                    })?;
                    // Structural validation is per-instruction; the static
                    // analyzer additionally proves whole-program properties
                    // (branch targets, channel pairing, constant-address
                    // bounds). Rejecting here keeps a doomed program from
                    // ever being scheduled onto a worker.
                    let report = vex_analyze::analyze(&program, machine);
                    if !report.is_clean() {
                        let first = report
                            .error_diags()
                            .next()
                            .map(std::string::ToString::to_string)
                            .unwrap_or_default();
                        return Err(format!(
                            "`{path}` fails static analysis on machine `{}` with {} error(s); \
                             first: {first} (run `vex check {path}` for the full report)",
                            p.machine.name,
                            report.errors()
                        ));
                    }
                    std::sync::Arc::new(program)
                }
            };
            let digest = program_digest(&program);
            prepared.insert(key, (PreparedProgram::prepare(program), digest));
        }
    }
    Ok(prepared)
}

/// The content-addressed key of `run`, looked up against a
/// [`prepare_programs`] table.
pub fn key_of(run: &RunSpec, prepared: &PreparedMap) -> u64 {
    let member_digests: Vec<u64> = run
        .mix
        .members
        .iter()
        .map(|m| prepared[&(run.machine_index, m.as_str().to_string())].1)
        .collect();
    point_key(run, &member_digests)
}

/// Expands `spec` and computes every point's content-addressed key —
/// what a scheduler needs to enqueue, dedup and cache jobs without
/// simulating anything. Compilation cost is paid once per distinct
/// (machine, member) pair, exactly as in the runner.
pub fn spec_point_keys(
    spec: &SweepSpec,
    loader: Option<ProgramLoader<'_>>,
) -> Result<Vec<(RunSpec, u64)>, String> {
    let points = spec.expand();
    if points.is_empty() {
        return Err(format!(
            "spec `{}` expands to no run points (empty axis)",
            spec.name
        ));
    }
    let prepared = prepare_programs(&points, loader)?;
    Ok(points
        .into_iter()
        .map(|run| {
            let key = key_of(&run, &prepared);
            (run, key)
        })
        .collect())
}

/// Wraps one resolved point back into a spec that expands to exactly that
/// point — the sweep service's assignment wire format. The canonical
/// printer emits every result-affecting field explicitly (including the
/// mix's resolved seed and the full machine geometry), and
/// `parse(print(spec)) == spec`, so a worker that parses the printed form
/// recomputes the identical [`point_key`](crate::point_key).
pub fn single_point_spec(run: &RunSpec) -> SweepSpec {
    let mut spec = SweepSpec::base(vex_sim::Scale {
        inst_limit: run.inst_limit,
        timeslice: run.timeslice,
    });
    spec.name = run.spec_name.clone();
    spec.max_cycles = run.max_cycles;
    spec.retries = 0;
    spec.seed = run.mix.seed;
    spec.threads = vec![run.threads];
    spec.techniques = vec![run.technique];
    spec.renaming = run.renaming;
    spec.memory = run.memory;
    spec.mt = run.mt;
    spec.respawn = run.respawn;
    spec.caches = run.caches;
    spec.trace = None;
    spec.journal = None;
    spec.machines = vec![run.machine.clone()];
    spec.mixes = vec![run.mix.clone()];
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use vex_sim::{Scale, Technique};
    use vex_spec::MixSpec;

    fn spec() -> SweepSpec {
        let mut spec = SweepSpec::base(Scale {
            inst_limit: 500,
            timeslice: 250,
        });
        spec.name = "jobs-test".into();
        spec.techniques = vec![Technique::csmt(), Technique::smt()];
        spec.threads = vec![2];
        spec.mixes = vec![MixSpec::builtin("llll", 7)];
        spec
    }

    #[test]
    fn point_keys_are_distinct_and_stable() {
        let spec = spec();
        let a = spec_point_keys(&spec, None).unwrap();
        let b = spec_point_keys(&spec, None).unwrap();
        assert_eq!(a.len(), 2);
        assert_ne!(a[0].1, a[1].1);
        for ((_, ka), (_, kb)) in a.iter().zip(&b) {
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn single_point_spec_round_trips_the_key() {
        let spec = spec();
        for (run, key) in spec_point_keys(&spec, None).unwrap() {
            let single = single_point_spec(&run);
            // Over the wire: print, parse, expand, re-key.
            let printed = single.print();
            let parsed = SweepSpec::parse(&printed).unwrap();
            let points = spec_point_keys(&parsed, None).unwrap();
            assert_eq!(points.len(), 1, "single-point spec must stay single");
            assert_eq!(points[0].1, key, "key must survive the wire format");
            assert_eq!(points[0].0.label(), run.label());
        }
    }
}
