//! Register naming: clustered general-purpose and branch registers.

use std::fmt;

/// Index of a cluster (0-based). The paper's machine has four clusters.
pub type ClusterId = u8;

/// A general-purpose register, `$r<cluster>.<index>` in VEX assembly.
///
/// Register index 0 is hardwired to zero in every cluster, mirroring VEX:
/// reads return 0 and writes are discarded. The compiler exploits this for
/// materialising constants and discarding results.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    /// Cluster whose register file holds this register.
    pub cluster: ClusterId,
    /// Register index within the cluster file (0..n_gprs).
    pub index: u8,
}

impl Reg {
    /// Creates a register reference.
    pub const fn new(cluster: ClusterId, index: u8) -> Self {
        Reg { cluster, index }
    }

    /// The hardwired-zero register of `cluster`.
    pub const fn zero(cluster: ClusterId) -> Self {
        Reg { cluster, index: 0 }
    }

    /// Whether this is the hardwired-zero register.
    pub const fn is_zero(self) -> bool {
        self.index == 0
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}.{}", self.cluster, self.index)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}.{}", self.cluster, self.index)
    }
}

/// A single-bit branch register, `$b<cluster>.<index>` in VEX assembly.
///
/// Branch registers are written by compare operations and read by conditional
/// branches and select operations. VEX gives each cluster eight of them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BReg {
    /// Cluster whose branch register file holds this register.
    pub cluster: ClusterId,
    /// Branch register index within the cluster file (0..n_bregs).
    pub index: u8,
}

impl BReg {
    /// Creates a branch register reference.
    pub const fn new(cluster: ClusterId, index: u8) -> Self {
        BReg { cluster, index }
    }
}

impl fmt::Debug for BReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$b{}.{}", self.cluster, self.index)
    }
}

impl fmt::Display for BReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$b{}.{}", self.cluster, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(Reg::zero(2).is_zero());
        assert!(!Reg::new(2, 1).is_zero());
        assert_eq!(Reg::zero(2).cluster, 2);
    }

    #[test]
    fn display_matches_vex_syntax() {
        assert_eq!(Reg::new(1, 17).to_string(), "$r1.17");
        assert_eq!(BReg::new(0, 3).to_string(), "$b0.3");
    }
}
