//! Programs: instruction streams with an initial data image.

use crate::inst::Instruction;
use crate::machine::MachineConfig;
use std::fmt;

/// An initialised region of a program's (private) data address space.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataSegment {
    /// Base byte address.
    pub base: u32,
    /// Initial contents.
    pub bytes: Vec<u8>,
}

/// A compiled VLIW program: the instruction stream, the byte addresses of
/// each instruction (for instruction-cache modelling) and the initial data
/// image (for functional simulation).
///
/// Control-flow targets are *instruction indices* (`Operation::imm`); the
/// byte layout exists only so the instruction cache sees realistic
/// variable-length code addresses.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    /// Human-readable benchmark name.
    pub name: String,
    /// The instruction stream. Index 0 is the entry point.
    pub instructions: Vec<Instruction>,
    /// Byte address of each instruction in the code space.
    pub inst_addr: Vec<u32>,
    /// Initial data image, applied when a run (re)starts.
    pub data: Vec<DataSegment>,
}

/// Base address of the code space; data segments live below this address.
pub const CODE_BASE: u32 = 0x4000_0000;

impl Program {
    /// Builds a program, laying instructions out contiguously from
    /// [`CODE_BASE`] to derive per-instruction fetch addresses.
    pub fn new(
        name: impl Into<String>,
        instructions: Vec<Instruction>,
        data: Vec<DataSegment>,
    ) -> Self {
        let mut inst_addr = Vec::with_capacity(instructions.len());
        let mut addr = CODE_BASE;
        for inst in &instructions {
            inst_addr.push(addr);
            addr += inst.encoded_size();
        }
        Program {
            name: name.into(),
            instructions,
            inst_addr,
            data,
        }
    }

    /// Number of VLIW instructions (including explicit NOPs).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// The cluster count this program targets (the bundle count of its
    /// instructions), or 0 for an empty program.
    pub fn n_clusters(&self) -> u8 {
        self.instructions
            .first()
            .map(Instruction::n_clusters)
            .unwrap_or(0)
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total operation count over the whole stream.
    pub fn total_ops(&self) -> u64 {
        self.instructions.iter().map(|i| i.op_count() as u64).sum()
    }

    /// Static operations-per-instruction density (compile-time ILP).
    pub fn static_density(&self) -> f64 {
        if self.instructions.is_empty() {
            0.0
        } else {
            self.total_ops() as f64 / self.instructions.len() as f64
        }
    }

    /// Validates every instruction and every branch target.
    pub fn validate(&self, m: &MachineConfig) -> Result<(), crate::ValidateError> {
        for (i, inst) in self.instructions.iter().enumerate() {
            inst.validate(m).map_err(|e| e.at(&self.name, i))?;
            for (c, b) in inst.bundles.iter().enumerate() {
                for op in &b.ops {
                    if op.opcode.is_ctrl() && !matches!(op.opcode, crate::op::Opcode::Halt) {
                        let t = op.imm;
                        if t < 0 || t as usize >= self.instructions.len() {
                            return Err(crate::ValidateError::in_bundle(
                                c as u8,
                                crate::validate::ValidateCause::BranchTarget { target: t },
                            )
                            .at(&self.name, i));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## program `{}` ({} instructions)",
            self.name,
            self.len()
        )?;
        for (i, inst) in self.instructions.iter().enumerate() {
            writeln!(f, "L{i}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Opcode, Operand, Operation};
    use crate::reg::Reg;

    fn mini_program() -> Program {
        let add = Operation::bin(
            Opcode::Add,
            Reg::new(0, 1),
            Operand::Gpr(Reg::new(0, 1)),
            Operand::Imm(1),
        );
        let mut halt_inst = Instruction::nop(4);
        halt_inst.bundles[0].ops.push(Operation::new(Opcode::Halt));
        Program::new(
            "mini",
            vec![
                Instruction::from_ops(
                    4,
                    [
                        (0, add.clone()),
                        (1, {
                            let mut a = add.clone();
                            a.dst = crate::op::Dest::Gpr(Reg::new(1, 1));
                            a.a = Operand::Gpr(Reg::new(1, 1));
                            a
                        }),
                    ],
                ),
                Instruction::nop(4),
                halt_inst,
            ],
            vec![],
        )
    }

    #[test]
    fn layout_addresses_are_contiguous() {
        let p = mini_program();
        assert_eq!(p.inst_addr[0], CODE_BASE);
        assert_eq!(p.inst_addr[1], CODE_BASE + 8); // 2 ops * 4 bytes
        assert_eq!(p.inst_addr[2], CODE_BASE + 12); // nop = 4 bytes
    }

    #[test]
    fn density_counts_ops_not_nops() {
        let p = mini_program();
        assert_eq!(p.total_ops(), 3);
        assert!((p.static_density() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut p = mini_program();
        let mut goto = Operation::new(Opcode::Goto);
        goto.imm = 99;
        p.instructions[1].bundles[0].ops.push(goto);
        assert!(p.validate(&MachineConfig::paper_4c4w()).is_err());
    }

    #[test]
    fn validate_accepts_mini_program() {
        assert!(mini_program()
            .validate(&MachineConfig::paper_4c4w())
            .is_ok());
    }
}
