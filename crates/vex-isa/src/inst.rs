//! Bundles and VLIW instructions.

use crate::machine::MachineConfig;
use crate::op::{FuKind, Operation};
use crate::reg::ClusterId;
use crate::validate::{ValidateCause, ValidateError};
use std::fmt;

/// The operations scheduled on one cluster in one cycle.
///
/// A bundle is the unit of splitting for cluster-level split-issue: all
/// operations of a bundle always issue together (paper §III).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bundle {
    /// The operations; at most `ClusterResources::slots` of them.
    pub ops: Vec<Operation>,
}

impl Bundle {
    /// An empty bundle (the cluster is unused this cycle).
    pub fn empty() -> Self {
        Bundle { ops: Vec::new() }
    }

    /// Whether the cluster is unused.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations of a functional-unit class in this bundle.
    pub fn fu_count(&self, kind: FuKind) -> u8 {
        self.ops.iter().filter(|o| o.fu_kind() == kind).count() as u8
    }

    /// Whether any operation is an inter-cluster send/recv.
    pub fn has_comm(&self) -> bool {
        self.ops.iter().any(|o| o.opcode.is_comm())
    }

    /// Whether any operation accesses memory.
    pub fn has_mem(&self) -> bool {
        self.ops.iter().any(|o| o.opcode.is_mem())
    }
}

/// A VLIW instruction: one bundle per cluster.
///
/// An instruction whose bundles are all empty is an explicit vertical NOP
/// (the compiler emits those for empty schedule cycles, as a VLIW binary
/// would encode them).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instruction {
    /// `bundles[c]` holds the operations for cluster `c`; the vector length
    /// equals the machine's cluster count.
    pub bundles: Vec<Bundle>,
}

impl Instruction {
    /// An all-NOP instruction for an `n_clusters` machine.
    pub fn nop(n_clusters: u8) -> Self {
        Instruction {
            bundles: (0..n_clusters).map(|_| Bundle::empty()).collect(),
        }
    }

    /// Builds an instruction from `(cluster, operation)` pairs.
    pub fn from_ops(n_clusters: u8, ops: impl IntoIterator<Item = (ClusterId, Operation)>) -> Self {
        let mut inst = Instruction::nop(n_clusters);
        for (c, op) in ops {
            inst.bundles[c as usize].ops.push(op);
        }
        inst
    }

    /// Number of clusters this instruction spans.
    pub fn n_clusters(&self) -> u8 {
        self.bundles.len() as u8
    }

    /// Bit `c` set iff cluster `c` has a non-empty bundle.
    pub fn used_cluster_mask(&self) -> u16 {
        let mut mask = 0u16;
        for (c, b) in self.bundles.iter().enumerate() {
            if !b.is_empty() {
                mask |= 1 << c;
            }
        }
        mask
    }

    /// Total operation count (a VLIW instruction is "1 to 16 RISC
    /// instructions" in the paper's accounting).
    pub fn op_count(&self) -> u32 {
        self.bundles.iter().map(|b| b.ops.len() as u32).sum()
    }

    /// Whether the instruction is an explicit vertical NOP.
    pub fn is_nop(&self) -> bool {
        self.bundles.iter().all(Bundle::is_empty)
    }

    /// Whether any operation is an inter-cluster send/recv. Instructions for
    /// which this is true are never split under the paper's
    /// "No split communication" configuration.
    pub fn has_comm(&self) -> bool {
        self.bundles.iter().any(Bundle::has_comm)
    }

    /// Whether any operation may redirect control flow.
    pub fn has_ctrl(&self) -> bool {
        self.bundles
            .iter()
            .any(|b| b.ops.iter().any(|o| o.opcode.is_ctrl()))
    }

    /// Encoded size in bytes: 4 bytes per operation, and an explicit NOP
    /// still occupies one 4-byte syllable (Lx-style encoding with stop bits).
    pub fn encoded_size(&self) -> u32 {
        4 * self.op_count().max(1)
    }

    /// Checks the instruction against per-cluster resource limits and
    /// register-file locality rules. The compiler guarantees this for
    /// generated code; hand-built instructions (tests, examples) should call
    /// it too, because the simulator's merging hardware assumes it.
    pub fn validate(&self, m: &MachineConfig) -> Result<(), ValidateError> {
        if self.bundles.len() != m.n_clusters as usize {
            return Err(ValidateError::in_instruction(ValidateCause::BundleCount {
                bundles: self.bundles.len(),
                clusters: m.n_clusters,
            }));
        }
        for (c, bundle) in self.bundles.iter().enumerate() {
            let c = c as u8;
            if bundle.ops.len() > m.cluster.slots as usize {
                return Err(ValidateError::in_bundle(
                    c,
                    ValidateCause::SlotsExceeded {
                        ops: bundle.ops.len(),
                        slots: m.cluster.slots,
                    },
                ));
            }
            for kind in FuKind::ALL {
                let used = bundle.fu_count(kind);
                if used > m.cluster.count(kind) {
                    return Err(ValidateError::in_bundle(
                        c,
                        ValidateCause::FuExceeded {
                            kind,
                            used,
                            units: m.cluster.count(kind),
                        },
                    ));
                }
            }
            for op in &bundle.ops {
                // Register locality: GPRs must be local to the cluster.
                // (Branch ops may read remote branch registers, like VEX.)
                if let crate::op::Dest::Gpr(r) = op.dst {
                    if r.cluster != c {
                        return Err(ValidateError::in_bundle(
                            c,
                            ValidateCause::RemoteWrite {
                                op: op.clone(),
                                reg: r,
                            },
                        ));
                    }
                }
                for r in op.src_gprs() {
                    if r.cluster != c {
                        return Err(ValidateError::in_bundle(
                            c,
                            ValidateCause::RemoteRead {
                                op: op.clone(),
                                reg: r,
                            },
                        ));
                    }
                }
                // Register indices must exist in the machine's files. The
                // simulator's flat register files rely on this: an index
                // past the per-cluster file would alias a neighbouring
                // cluster's registers instead of faulting.
                for r in op.src_gprs().chain(match op.dst {
                    crate::op::Dest::Gpr(r) => Some(r),
                    _ => None,
                }) {
                    if r.index >= m.n_gprs {
                        return Err(ValidateError::in_bundle(
                            c,
                            ValidateCause::GprIndex {
                                op: op.clone(),
                                reg: r,
                                n_gprs: m.n_gprs,
                            },
                        ));
                    }
                }
                let bregs = [
                    match op.dst {
                        crate::op::Dest::Breg(b) => Some(b),
                        _ => None,
                    },
                    op.a.breg(),
                    op.b.breg(),
                    op.c.breg(),
                ];
                for b in bregs.into_iter().flatten() {
                    if b.index >= m.n_bregs {
                        return Err(ValidateError::in_bundle(
                            c,
                            ValidateCause::BregIndex {
                                op: op.clone(),
                                breg: b,
                                n_bregs: m.n_bregs,
                            },
                        ));
                    }
                }
            }
        }
        // Send/recv pair ids must be in transfer-tag range and must match
        // one-to-one within the instruction.
        let mut sends: Vec<i32> = Vec::new();
        let mut recvs: Vec<i32> = Vec::new();
        for (c, b) in self.bundles.iter().enumerate() {
            for op in &b.ops {
                if op.opcode.is_comm() && !(0..16).contains(&op.imm) {
                    return Err(ValidateError::in_bundle(
                        c as u8,
                        ValidateCause::PairIdRange {
                            op: op.clone(),
                            id: op.imm,
                        },
                    ));
                }
                match op.opcode {
                    crate::op::Opcode::Send => sends.push(op.imm),
                    crate::op::Opcode::Recv => recvs.push(op.imm),
                    _ => {}
                }
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        if sends != recvs {
            return Err(ValidateError::in_instruction(ValidateCause::UnpairedComm));
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nop() {
            return write!(f, "  nop");
        }
        for (c, b) in self.bundles.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            for op in &b.ops {
                writeln!(f, "  c{c} {op}")?;
            }
        }
        write!(f, ";;")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Opcode, Operand, Operation};
    use crate::reg::Reg;

    fn add(c: u8) -> Operation {
        Operation::bin(
            Opcode::Add,
            Reg::new(c, 1),
            Operand::Gpr(Reg::new(c, 2)),
            Operand::Imm(1),
        )
    }

    #[test]
    fn nop_properties() {
        let n = Instruction::nop(4);
        assert!(n.is_nop());
        assert_eq!(n.op_count(), 0);
        assert_eq!(n.used_cluster_mask(), 0);
        assert_eq!(n.encoded_size(), 4);
    }

    #[test]
    fn cluster_mask_and_counts() {
        let i = Instruction::from_ops(4, [(0, add(0)), (2, add(2)), (2, add(2))]);
        assert_eq!(i.used_cluster_mask(), 0b0101);
        assert_eq!(i.op_count(), 3);
        assert_eq!(i.encoded_size(), 12);
        assert!(!i.is_nop());
    }

    #[test]
    fn validate_accepts_legal_instruction() {
        let m = MachineConfig::paper_4c4w();
        let i = Instruction::from_ops(4, [(0, add(0)), (1, add(1))]);
        assert!(i.validate(&m).is_ok());
    }

    #[test]
    fn validate_rejects_remote_register() {
        let m = MachineConfig::paper_4c4w();
        // Op placed on cluster 1 but reads cluster-0 registers.
        let i = Instruction::from_ops(4, [(1, add(0))]);
        assert!(i.validate(&m).is_err());
    }

    #[test]
    fn validate_rejects_oversubscribed_fu() {
        let m = MachineConfig::paper_4c4w();
        let ld = |c: u8| Operation::load(Opcode::Ldw, Reg::new(c, 1), Reg::new(c, 2), 0);
        // Two loads on one cluster: only 1 mem unit.
        let i = Instruction::from_ops(4, [(0, ld(0)), (0, ld(0))]);
        assert!(i.validate(&m).is_err());
    }

    #[test]
    fn validate_rejects_out_of_file_register_indices() {
        let m = MachineConfig::paper_4c4w();
        // GPR index past the 64-register file.
        let i = Instruction::from_ops(
            4,
            [(
                0,
                Operation::bin(
                    Opcode::Add,
                    Reg::new(0, 64),
                    Operand::Gpr(Reg::new(0, 1)),
                    Operand::Imm(1),
                ),
            )],
        );
        assert!(i.validate(&m).unwrap_err().to_string().contains("64 GPRs"));
        // Branch-register index past the 8-register file.
        let mut cmp = Operation::new(Opcode::CmpEq);
        cmp.dst = crate::op::Dest::Breg(crate::reg::BReg::new(0, 8));
        cmp.a = Operand::Gpr(Reg::new(0, 1));
        cmp.b = Operand::Imm(0);
        let i = Instruction::from_ops(4, [(0, cmp)]);
        assert!(i
            .validate(&m)
            .unwrap_err()
            .to_string()
            .contains("branch register"));
    }

    #[test]
    fn validate_rejects_out_of_range_pair_id() {
        // Pair id 16 would alias id 0 in the simulator's 16-entry transfer
        // buffer; validation must reject it even though send/recv match.
        let m = MachineConfig::paper_4c4w();
        let mut send = Operation::new(Opcode::Send);
        send.a = Operand::Gpr(Reg::new(0, 1));
        send.imm = 16;
        let mut recv = Operation::new(Opcode::Recv);
        recv.dst = crate::op::Dest::Gpr(Reg::new(1, 2));
        recv.imm = 16;
        let i = Instruction::from_ops(4, [(0, send), (1, recv)]);
        assert!(i.validate(&m).unwrap_err().to_string().contains("pair id"));
    }

    #[test]
    fn validate_rejects_unpaired_send() {
        let m = MachineConfig::paper_4c4w();
        let mut send = Operation::new(Opcode::Send);
        send.a = Operand::Gpr(Reg::new(0, 1));
        send.imm = 7;
        let i = Instruction::from_ops(4, [(0, send)]);
        assert!(i.validate(&m).is_err());
    }
}
