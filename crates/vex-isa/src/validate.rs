//! Typed validation errors for instructions and programs.
//!
//! [`Instruction::validate`](crate::Instruction::validate) and
//! [`Program::validate`](crate::Program::validate) report violations as a
//! [`ValidateError`]: the op coordinates of the offending operation plus a
//! structured [`ValidateCause`]. The `Display` impl reproduces the
//! historical string messages exactly, so callers that format the error
//! see no change; structured consumers (the `vex-analyze` checker) match
//! on the cause instead of parsing text.

use crate::op::{FuKind, Operation};
use crate::reg::{BReg, Reg};
use std::fmt;

/// What a validation check found wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidateCause {
    /// The instruction's bundle count does not match the machine's
    /// cluster count.
    BundleCount {
        /// Bundles in the instruction.
        bundles: usize,
        /// Clusters in the machine.
        clusters: u8,
    },
    /// A bundle holds more operations than the cluster has issue slots.
    SlotsExceeded {
        /// Operations in the bundle.
        ops: usize,
        /// Issue slots per cluster.
        slots: u8,
    },
    /// A bundle demands more units of one functional-unit class than the
    /// cluster provides.
    FuExceeded {
        /// The oversubscribed class.
        kind: FuKind,
        /// Operations of that class in the bundle.
        used: u8,
        /// Units of that class per cluster.
        units: u8,
    },
    /// An operation writes a GPR of another cluster.
    RemoteWrite {
        /// The offending operation.
        op: Operation,
        /// The remote register.
        reg: Reg,
    },
    /// An operation reads a GPR of another cluster.
    RemoteRead {
        /// The offending operation.
        op: Operation,
        /// The remote register.
        reg: Reg,
    },
    /// An operation names a GPR index past the machine's register file.
    GprIndex {
        /// The offending operation.
        op: Operation,
        /// The out-of-file register.
        reg: Reg,
        /// GPRs per cluster on this machine.
        n_gprs: u8,
    },
    /// An operation names a branch-register index past the machine's file.
    BregIndex {
        /// The offending operation.
        op: Operation,
        /// The out-of-file branch register.
        breg: BReg,
        /// Branch registers per cluster on this machine.
        n_bregs: u8,
    },
    /// A send/recv pair id does not fit the 16-entry transfer buffer.
    PairIdRange {
        /// The offending operation.
        op: Operation,
        /// The out-of-range pair id.
        id: i32,
    },
    /// The instruction's sends and recvs do not match one-to-one.
    UnpairedComm,
    /// A control operation targets an instruction index outside the
    /// program.
    BranchTarget {
        /// The out-of-range target.
        target: i32,
    },
}

impl fmt::Display for ValidateCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateCause::BundleCount { bundles, clusters } => write!(
                f,
                "instruction has {bundles} bundles, machine has {clusters} clusters"
            ),
            ValidateCause::SlotsExceeded { ops, slots } => {
                write!(f, "{ops} ops exceed {slots} issue slots")
            }
            ValidateCause::FuExceeded { kind, used, units } => {
                write!(f, "{used} {kind:?} ops exceed {units} units")
            }
            ValidateCause::RemoteWrite { op, reg } => {
                write!(f, "op `{op}` writes remote register {reg}")
            }
            ValidateCause::RemoteRead { op, reg } => {
                write!(f, "op `{op}` reads remote register {reg}")
            }
            ValidateCause::GprIndex { op, reg, n_gprs } => write!(
                f,
                "op `{op}` names register {reg} but the machine has {n_gprs} GPRs per cluster"
            ),
            ValidateCause::BregIndex { op, breg, n_bregs } => write!(
                f,
                "op `{op}` names branch register {breg} but the machine has {n_bregs} \
                 branch registers per cluster"
            ),
            ValidateCause::PairIdRange { op, id } => {
                write!(f, "op `{op}`: transfer pair id x{id} out of range (0..16)")
            }
            ValidateCause::UnpairedComm => {
                write!(f, "unpaired send/recv operations in instruction")
            }
            ValidateCause::BranchTarget { target } => {
                write!(f, "branch target L{target} out of range")
            }
        }
    }
}

/// A validation failure with the coordinates of the offending operation.
///
/// Coordinates are filled in as far as the check's granularity allows:
/// [`Instruction::validate`](crate::Instruction::validate) leaves `inst`
/// unset (it does not know the instruction's stream position) and
/// instruction-wide causes carry no cluster; `program` is only set by
/// [`Program::validate`](crate::Program::validate).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidateError {
    /// Name of the validated program, when known.
    pub program: Option<String>,
    /// Instruction index in the stream, when known.
    pub inst: Option<usize>,
    /// Cluster of the offending bundle, for per-bundle causes.
    pub cluster: Option<u8>,
    /// The violation.
    pub cause: ValidateCause,
}

impl ValidateError {
    /// An error found while validating a lone instruction.
    pub fn in_bundle(cluster: u8, cause: ValidateCause) -> Self {
        ValidateError {
            program: None,
            inst: None,
            cluster: Some(cluster),
            cause,
        }
    }

    /// An instruction-wide error (no specific bundle).
    pub fn in_instruction(cause: ValidateCause) -> Self {
        ValidateError {
            program: None,
            inst: None,
            cluster: None,
            cause,
        }
    }

    /// Returns the error with the program-level coordinates attached.
    pub fn at(mut self, program: &str, inst: usize) -> Self {
        self.program = Some(program.to_string());
        self.inst = Some(inst);
        self
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.program {
            write!(f, "{name}: ")?;
        }
        if let Some(inst) = self.inst {
            write!(f, "instruction {inst}: ")?;
        }
        // Per-bundle causes historically carried their cluster in the
        // message prefix; instruction-wide causes did not.
        match (&self.cause, self.cluster) {
            (ValidateCause::BundleCount { .. }, _)
            | (ValidateCause::UnpairedComm, _)
            | (ValidateCause::PairIdRange { .. }, _)
            | (ValidateCause::BranchTarget { .. }, _)
            | (_, None) => write!(f, "{}", self.cause),
            (cause, Some(c)) => write!(f, "cluster {c}: {cause}"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<ValidateError> for String {
    fn from(e: ValidateError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Opcode, Operand};

    #[test]
    fn display_matches_legacy_messages() {
        let op = Operation::bin(
            Opcode::Add,
            Reg::new(0, 64),
            Operand::Gpr(Reg::new(0, 1)),
            Operand::Imm(1),
        );
        let e = ValidateError::in_bundle(
            0,
            ValidateCause::GprIndex {
                op: op.clone(),
                reg: Reg::new(0, 64),
                n_gprs: 64,
            },
        );
        assert_eq!(
            e.to_string(),
            "cluster 0: op `add $r0.64 = $r0.1, 1` names register $r0.64 but the \
             machine has 64 GPRs per cluster"
        );

        let e = ValidateError::in_instruction(ValidateCause::UnpairedComm).at("prog", 3);
        assert_eq!(
            e.to_string(),
            "prog: instruction 3: unpaired send/recv operations in instruction"
        );

        let e =
            ValidateError::in_instruction(ValidateCause::BranchTarget { target: 99 }).at("mini", 1);
        assert_eq!(
            e.to_string(),
            "mini: instruction 1: branch target L99 out of range"
        );
    }
}
