//! Machine description: cluster resources and latency model.
//!
//! The compiler schedules against this description and the simulator's
//! merging hardware enforces it at issue time, so both sides agree on what
//! fits in a cycle.

use crate::op::FuKind;

/// Per-cluster issue resources.
///
/// The paper's configuration (§IV): a 4-issue cluster with 2 multipliers,
/// 1 load/store unit and 4 ALUs. We also give every cluster a branch unit
/// and one send plus one receive port on the inter-cluster network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClusterResources {
    /// Issue slots per cycle (bundle capacity).
    pub slots: u8,
    /// Integer ALUs.
    pub alu: u8,
    /// Multipliers.
    pub mul: u8,
    /// Load/store units (= data cache ports).
    pub mem: u8,
    /// Branch units.
    pub br: u8,
    /// Network send ports.
    pub send: u8,
    /// Network receive ports.
    pub recv: u8,
}

impl ClusterResources {
    /// The paper's 4-issue cluster.
    pub const fn paper() -> Self {
        ClusterResources {
            slots: 4,
            alu: 4,
            mul: 2,
            mem: 1,
            br: 1,
            send: 1,
            recv: 1,
        }
    }

    /// A narrow 2-issue cluster, handy for unit tests that mirror the
    /// paper's Figure 1 (2-issue clusters) and Figure 5 (3-issue clusters).
    pub const fn narrow(slots: u8) -> Self {
        ClusterResources {
            slots,
            alu: slots,
            mul: if slots >= 2 { slots / 2 } else { 1 },
            mem: 1,
            br: 1,
            send: 1,
            recv: 1,
        }
    }

    /// Units available for a functional-unit class.
    pub fn count(&self, kind: FuKind) -> u8 {
        match kind {
            FuKind::Alu => self.alu,
            FuKind::Mul => self.mul,
            FuKind::Mem => self.mem,
            FuKind::Br => self.br,
            FuKind::Send => self.send,
            FuKind::Recv => self.recv,
        }
    }

    /// Unit counts for every class, indexed by [`FuKind::index`] — the
    /// array form the simulator's per-cycle fit checks compare against.
    #[inline]
    pub const fn counts(&self) -> [u8; FuKind::COUNT] {
        [self.alu, self.mul, self.mem, self.br, self.send, self.recv]
    }
}

/// Assumed operation latencies, exposed to the compiler (NUAL).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Latencies {
    /// ALU operations (including compares): 1 cycle in the paper.
    pub alu: u8,
    /// Multiplies: 2 cycles.
    pub mul: u8,
    /// Memory operations: 2 cycles (cache hit).
    pub mem: u8,
    /// Inter-cluster transfer: cycles from send issue to recv result.
    pub xfer: u8,
    /// Minimum scheduling distance from a compare to the branch reading it
    /// (the paper's two-phase branch: 2 cycles).
    pub cmp_to_br: u8,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            alu: 1,
            mul: 2,
            mem: 2,
            xfer: 1,
            cmp_to_br: 2,
        }
    }
}

/// Full machine configuration shared by compiler and simulator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Number of clusters.
    pub n_clusters: u8,
    /// Resources of each (homogeneous) cluster.
    pub cluster: ClusterResources,
    /// Assumed latencies.
    pub lat: Latencies,
    /// Extra cycles lost after a taken branch (no predictor; fall-through
    /// is the predicted path): 1 in the paper.
    pub taken_branch_penalty: u8,
    /// General-purpose registers per cluster (64 in VEX; index 0 is zero).
    pub n_gprs: u8,
    /// Branch registers per cluster (8 in VEX).
    pub n_bregs: u8,
}

impl MachineConfig {
    /// The paper's evaluation machine: 4 clusters × 4-issue = 16-issue.
    pub fn paper_4c4w() -> Self {
        MachineConfig {
            n_clusters: 4,
            cluster: ClusterResources::paper(),
            lat: Latencies::default(),
            taken_branch_penalty: 1,
            n_gprs: 64,
            n_bregs: 8,
        }
    }

    /// Two narrow 2-issue clusters — the geometry of the paper's Figure 1
    /// worked examples and of `examples/narrow_2c.toml`. Narrow clusters
    /// make whole-instruction merging much harder, so this is the second
    /// machine the differential fuzzer sweeps in CI.
    pub fn narrow_2c() -> Self {
        Self::small(2, 2)
    }

    /// A small machine for unit tests and the paper's worked examples.
    pub fn small(n_clusters: u8, slots: u8) -> Self {
        MachineConfig {
            n_clusters,
            cluster: ClusterResources::narrow(slots),
            lat: Latencies::default(),
            taken_branch_penalty: 1,
            n_gprs: 64,
            n_bregs: 8,
        }
    }

    /// Total issue width across clusters.
    pub fn total_issue_width(&self) -> u32 {
        self.n_clusters as u32 * self.cluster.slots as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_is_16_issue() {
        let m = MachineConfig::paper_4c4w();
        assert_eq!(m.n_clusters, 4);
        assert_eq!(m.total_issue_width(), 16);
        assert_eq!(m.cluster.count(FuKind::Alu), 4);
        assert_eq!(m.cluster.count(FuKind::Mul), 2);
        assert_eq!(m.cluster.count(FuKind::Mem), 1);
    }

    #[test]
    fn default_latencies_match_paper() {
        let lat = Latencies::default();
        assert_eq!(lat.alu, 1);
        assert_eq!(lat.mul, 2);
        assert_eq!(lat.mem, 2);
        assert_eq!(lat.cmp_to_br, 2);
    }

    #[test]
    fn narrow_cluster_scales() {
        let c = ClusterResources::narrow(2);
        assert_eq!(c.slots, 2);
        assert_eq!(c.alu, 2);
        assert_eq!(c.mul, 1);
    }

    #[test]
    fn narrow_2c_matches_the_example_spec() {
        // Keep the preset in lockstep with examples/narrow_2c.toml.
        let m = MachineConfig::narrow_2c();
        assert_eq!(m.n_clusters, 2);
        assert_eq!(m.cluster.slots, 2);
        assert_eq!(m.cluster.alu, 2);
        assert_eq!(m.cluster.mul, 1);
        assert_eq!(m.cluster.mem, 1);
        assert_eq!((m.cluster.send, m.cluster.recv), (1, 1));
    }
}
