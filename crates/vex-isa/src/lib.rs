//! # vex-isa — a VEX-like clustered VLIW instruction set model
//!
//! This crate defines the architectural vocabulary shared by the compiler
//! (`vex-compiler`), the simulator (`vex-sim`) and the workloads: operations,
//! bundles, VLIW instructions, programs, and the machine resource model.
//!
//! The ISA follows the paper's base architecture (Gupta et al., IPDPS-W 2010,
//! Section IV), which is the HP VEX architecture modelled on the HP/ST ST200
//! VLIW family:
//!
//! * 32-bit clustered integer VLIW; each cluster has a private general
//!   purpose register file (64 × 32-bit, `$r0.N` hardwired to zero) and a
//!   private branch register file (8 × 1-bit).
//! * Functional units within a cluster only access local registers; data
//!   moves between clusters via explicit [`Opcode::Send`]/[`Opcode::Recv`]
//!   operation pairs over a fully connected inter-cluster network.
//! * *Operations* are RISC-style units of execution; the operations scheduled
//!   on one cluster in a cycle form a [`Bundle`]; the set of bundles forms the
//!   VLIW [`Instruction`] (the Lx terminology used by the paper, §III fn. 1).
//! * Non-unit assumed latencies (NUAL), less-than-or-equal semantics:
//!   memory and multiply operations have an assumed latency of 2 cycles,
//!   everything else 1 cycle. Branches are two-phase: a compare writes a
//!   branch register at least [`Latencies::cmp_to_br`] cycles before the
//!   branch that reads it.
//!
//! Nothing here is specific to multithreading or split-issue; those live in
//! `vex-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inst;
pub mod machine;
pub mod op;
pub mod program;
pub mod reg;
pub mod validate;

pub use inst::{Bundle, Instruction};
pub use machine::{ClusterResources, Latencies, MachineConfig};
pub use op::{Dest, FuKind, Opcode, Operand, Operation};
pub use program::{DataSegment, Program, CODE_BASE};
pub use reg::{BReg, ClusterId, Reg};
pub use validate::{ValidateCause, ValidateError};
