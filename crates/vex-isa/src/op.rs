//! Operations: opcodes, operands and the RISC-style execution units of a
//! VLIW instruction.

use crate::machine::Latencies;
use crate::reg::{BReg, Reg};
use std::fmt;

/// The functional-unit class an operation executes on.
///
/// The paper's 4-issue cluster provides 4 ALUs, 2 multipliers, 1 load/store
/// unit and a branch unit; we additionally model one send and one receive
/// port per cluster on the fully connected inter-cluster network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuKind {
    /// Integer ALU (arithmetic, logic, shifts, compares, selects, moves).
    Alu,
    /// Pipelined multiplier.
    Mul,
    /// Load/store unit.
    Mem,
    /// Branch/control unit (also executes `goto` and `halt`).
    Br,
    /// Inter-cluster network send port.
    Send,
    /// Inter-cluster network receive port.
    Recv,
}

impl FuKind {
    /// Number of functional-unit classes.
    pub const COUNT: usize = 6;

    /// Every class, indexed by [`FuKind::index`].
    pub const ALL: [FuKind; Self::COUNT] = [
        FuKind::Alu,
        FuKind::Mul,
        FuKind::Mem,
        FuKind::Br,
        FuKind::Send,
        FuKind::Recv,
    ];

    /// Dense index of this class (discriminant order), for per-class
    /// counter arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`FuKind::index`], for classes packed into byte fields.
    /// Indices at or above [`FuKind::COUNT`] fold to `Recv`; callers store
    /// only valid indices.
    #[inline]
    pub const fn from_index(i: usize) -> FuKind {
        match i {
            0 => FuKind::Alu,
            1 => FuKind::Mul,
            2 => FuKind::Mem,
            3 => FuKind::Br,
            4 => FuKind::Send,
            _ => FuKind::Recv,
        }
    }
}

/// Operation codes. Semantics operate on 32-bit two's-complement words.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    // ---- ALU, latency `lat.alu` ----
    /// `dst = a + b`
    Add,
    /// `dst = a - b`
    Sub,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
    /// `dst = a ^ b`
    Xor,
    /// `dst = a & !b` (and-complement, a VEX idiom)
    Andc,
    /// `dst = a << (b & 31)`
    Shl,
    /// `dst = (a as u32) >> (b & 31)` (logical)
    Shr,
    /// `dst = (a as i32) >> (b & 31)` (arithmetic)
    Sra,
    /// `dst = min(a, b)` signed
    Min,
    /// `dst = max(a, b)` signed
    Max,
    /// `dst = min(a, b)` unsigned
    Minu,
    /// `dst = max(a, b)` unsigned
    Maxu,
    /// `dst = a` (also used to materialise immediates)
    Mov,
    /// Sign-extend low byte: `dst = sxt8(a)`
    Sxtb,
    /// Sign-extend low half: `dst = sxt16(a)`
    Sxth,
    /// Zero-extend low byte: `dst = a & 0xff`
    Zxtb,
    /// Zero-extend low half: `dst = a & 0xffff`
    Zxth,
    /// Select: `dst = if c { a } else { b }`, `c` is a branch register.
    Slct,
    /// `dst = (a == b)`; destination may be a GPR (0/1) or a branch register.
    CmpEq,
    /// `dst = (a != b)`
    CmpNe,
    /// `dst = (a < b)` signed
    CmpLt,
    /// `dst = (a <= b)` signed
    CmpLe,
    /// `dst = (a > b)` signed
    CmpGt,
    /// `dst = (a >= b)` signed
    CmpGe,
    /// `dst = (a < b)` unsigned
    CmpLtu,
    /// `dst = (a >= b)` unsigned
    CmpGeu,

    // ---- Multiplier, latency `lat.mul` ----
    /// `dst = low32(a * b)`
    Mull,
    /// `dst = high32(sxt64(a) * sxt64(b))`
    Mulh,

    // ---- Memory, latency `lat.mem` ----
    /// `dst = sxt32(*(i32*)(a + imm))`
    Ldw,
    /// `dst = sxt16(*(i16*)(a + imm))`
    Ldh,
    /// `dst = zxt16(*(u16*)(a + imm))`
    Ldhu,
    /// `dst = sxt8(*(i8*)(a + imm))`
    Ldb,
    /// `dst = zxt8(*(u8*)(a + imm))`
    Ldbu,
    /// `*(u32*)(a + imm) = b`
    Stw,
    /// `*(u16*)(a + imm) = b & 0xffff`
    Sth,
    /// `*(u8*)(a + imm) = b & 0xff`
    Stb,

    // ---- Control, latency 1; branch unit ----
    /// Branch to instruction index `imm` if branch register `a` is true.
    Br,
    /// Branch to instruction index `imm` if branch register `a` is false.
    Brf,
    /// Unconditional branch to instruction index `imm`.
    Goto,
    /// Terminate the program run (the simulator respawns or retires it).
    Halt,

    // ---- Inter-cluster communication, latency `lat.xfer` ----
    /// Read GPR `a` and place it on the network; paired with the [`Opcode::Recv`]
    /// carrying the same `imm` pair-id in the same VLIW instruction.
    Send,
    /// Write the paired [`Opcode::Send`] value into `dst`.
    Recv,
}

impl Opcode {
    /// Every opcode, in declaration (= discriminant) order. This order is
    /// part of the `vex-asm` binary format: [`Opcode::code`] indexes into
    /// it, so new opcodes must be appended, never inserted.
    pub const ALL: [Opcode; 43] = {
        use Opcode::*;
        [
            Add, Sub, And, Or, Xor, Andc, Shl, Shr, Sra, Min, Max, Minu, Maxu, Mov, Sxtb, Sxth,
            Zxtb, Zxth, Slct, CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpLtu, CmpGeu, Mull, Mulh,
            Ldw, Ldh, Ldhu, Ldb, Ldbu, Stw, Sth, Stb, Br, Brf, Goto, Halt, Send, Recv,
        ]
    };

    /// Stable one-byte encoding of this opcode (its index in [`Opcode::ALL`]).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Opcode::code`].
    pub fn from_code(code: u8) -> Option<Opcode> {
        Self::ALL.get(code as usize).copied()
    }

    /// Looks an opcode up by its VEX mnemonic (the inverse of
    /// [`Opcode::mnemonic`]).
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Self::ALL.into_iter().find(|op| op.mnemonic() == s)
    }

    /// The functional-unit class this opcode occupies.
    pub fn fu_kind(self) -> FuKind {
        use Opcode::*;
        match self {
            Mull | Mulh => FuKind::Mul,
            Ldw | Ldh | Ldhu | Ldb | Ldbu | Stw | Sth | Stb => FuKind::Mem,
            Br | Brf | Goto | Halt => FuKind::Br,
            Send => FuKind::Send,
            Recv => FuKind::Recv,
            _ => FuKind::Alu,
        }
    }

    /// Assumed (compiler-visible) result latency in cycles.
    pub fn latency(self, lat: &Latencies) -> u8 {
        match self.fu_kind() {
            FuKind::Mul => lat.mul,
            FuKind::Mem => lat.mem,
            FuKind::Recv | FuKind::Send => lat.xfer,
            FuKind::Alu => lat.alu,
            FuKind::Br => 1,
        }
    }

    /// Whether this opcode reads memory.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Opcode::Ldw | Opcode::Ldh | Opcode::Ldhu | Opcode::Ldb | Opcode::Ldbu
        )
    }

    /// Whether this opcode writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stw | Opcode::Sth | Opcode::Stb)
    }

    /// Whether this opcode accesses memory at all.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether this opcode may redirect control flow.
    pub fn is_ctrl(self) -> bool {
        matches!(self, Opcode::Br | Opcode::Brf | Opcode::Goto | Opcode::Halt)
    }

    /// Whether this is an inter-cluster communication operation
    /// (the paper's "no split communication" configuration keys off this).
    pub fn is_comm(self) -> bool {
        matches!(self, Opcode::Send | Opcode::Recv)
    }

    /// Whether this is a compare writing a branch register or GPR.
    pub fn is_cmp(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | CmpLtu | CmpGeu
        )
    }

    /// Lower-case VEX-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Andc => "andc",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            Min => "min",
            Max => "max",
            Minu => "minu",
            Maxu => "maxu",
            Mov => "mov",
            Sxtb => "sxtb",
            Sxth => "sxth",
            Zxtb => "zxtb",
            Zxth => "zxth",
            Slct => "slct",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
            CmpLtu => "cmpltu",
            CmpGeu => "cmpgeu",
            Mull => "mull",
            Mulh => "mulh",
            Ldw => "ldw",
            Ldh => "ldh",
            Ldhu => "ldhu",
            Ldb => "ldb",
            Ldbu => "ldbu",
            Stw => "stw",
            Sth => "sth",
            Stb => "stb",
            Br => "br",
            Brf => "brf",
            Goto => "goto",
            Halt => "halt",
            Send => "send",
            Recv => "recv",
        }
    }
}

/// A source operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Unused operand slot.
    None,
    /// A general-purpose register read.
    Gpr(Reg),
    /// A branch register read (branch conditions, select conditions).
    Breg(BReg),
    /// A 32-bit immediate.
    Imm(i32),
}

impl Operand {
    /// The GPR read by this operand, if any.
    pub fn gpr(self) -> Option<Reg> {
        match self {
            Operand::Gpr(r) => Some(r),
            _ => None,
        }
    }

    /// The branch register read by this operand, if any.
    pub fn breg(self) -> Option<BReg> {
        match self {
            Operand::Breg(b) => Some(b),
            _ => None,
        }
    }
}

/// A destination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dest {
    /// No register result (stores, branches, send, halt).
    None,
    /// Write a general-purpose register.
    Gpr(Reg),
    /// Write a branch register (compares).
    Breg(BReg),
}

/// One RISC-style operation inside a VLIW instruction.
///
/// The operation does not record its own cluster: it inherits it from the
/// [`crate::Bundle`] that contains it, and every register it names must live
/// in that cluster (with the single architectural exception that branch
/// operations may read a branch register of another cluster, as in VEX).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Operation {
    /// What to do.
    pub opcode: Opcode,
    /// Register result, if any.
    pub dst: Dest,
    /// First source (base address for memory operations).
    pub a: Operand,
    /// Second source (store value for stores).
    pub b: Operand,
    /// Third source (select condition).
    pub c: Operand,
    /// Immediate rider: address offset for loads/stores, target instruction
    /// index for control flow, pair-id for send/recv.
    pub imm: i32,
}

impl Operation {
    /// Creates an operation with no operands; fill in fields as needed.
    pub fn new(opcode: Opcode) -> Self {
        Operation {
            opcode,
            dst: Dest::None,
            a: Operand::None,
            b: Operand::None,
            c: Operand::None,
            imm: 0,
        }
    }

    /// A two-source ALU/MUL operation writing a GPR.
    pub fn bin(opcode: Opcode, dst: Reg, a: Operand, b: Operand) -> Self {
        Operation {
            opcode,
            dst: Dest::Gpr(dst),
            a,
            b,
            c: Operand::None,
            imm: 0,
        }
    }

    /// A load `dst = [base + off]`.
    pub fn load(opcode: Opcode, dst: Reg, base: Reg, off: i32) -> Self {
        debug_assert!(opcode.is_load());
        Operation {
            opcode,
            dst: Dest::Gpr(dst),
            a: Operand::Gpr(base),
            b: Operand::None,
            c: Operand::None,
            imm: off,
        }
    }

    /// A store `[base + off] = value`.
    pub fn store(opcode: Opcode, base: Reg, off: i32, value: Operand) -> Self {
        debug_assert!(opcode.is_store());
        Operation {
            opcode,
            dst: Dest::None,
            a: Operand::Gpr(base),
            b: value,
            c: Operand::None,
            imm: off,
        }
    }

    /// Iterator over the GPRs this operation reads.
    pub fn src_gprs(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.a, self.b, self.c]
            .into_iter()
            .filter_map(Operand::gpr)
    }

    /// The functional-unit class of the opcode.
    pub fn fu_kind(&self) -> FuKind {
        self.opcode.fu_kind()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn operand(f: &mut fmt::Formatter<'_>, o: Operand, first: &mut bool) -> fmt::Result {
            if o == Operand::None {
                return Ok(());
            }
            if !*first {
                write!(f, ", ")?;
            }
            *first = false;
            match o {
                Operand::None => Ok(()),
                Operand::Gpr(r) => write!(f, "{r}"),
                Operand::Breg(b) => write!(f, "{b}"),
                Operand::Imm(v) => write!(f, "{v}"),
            }
        }

        write!(f, "{}", self.opcode.mnemonic())?;
        match self.dst {
            Dest::None => {}
            Dest::Gpr(r) => write!(f, " {r} =")?,
            Dest::Breg(b) => write!(f, " {b} =")?,
        }
        if self.opcode.is_mem() {
            // Memory syntax: ldw $r0.1 = 8[$r0.2] / stw 8[$r0.2] = $r0.3
            let base = match self.a {
                Operand::Gpr(r) => r,
                _ => Reg::zero(0),
            };
            if self.opcode.is_load() {
                return write!(f, " {}[{base}]", self.imm);
            }
            write!(f, " {}[{base}] = ", self.imm)?;
            let mut first = true;
            return operand(f, self.b, &mut first);
        }
        if self.opcode.is_ctrl() {
            write!(f, " ")?;
            let mut first = true;
            operand(f, self.a, &mut first)?;
            if !matches!(self.opcode, Opcode::Halt) {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "L{}", self.imm)?;
            }
            return Ok(());
        }
        write!(f, " ")?;
        let mut first = true;
        operand(f, self.a, &mut first)?;
        operand(f, self.b, &mut first)?;
        operand(f, self.c, &mut first)?;
        if self.opcode.is_comm() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "x{}", self.imm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_code_and_mnemonic_roundtrip() {
        for (i, op) in Opcode::ALL.into_iter().enumerate() {
            assert_eq!(op.code() as usize, i);
            assert_eq!(Opcode::from_code(op.code()), Some(op));
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_code(Opcode::ALL.len() as u8), None);
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn fu_classification() {
        assert_eq!(Opcode::Add.fu_kind(), FuKind::Alu);
        assert_eq!(Opcode::Mull.fu_kind(), FuKind::Mul);
        assert_eq!(Opcode::Ldw.fu_kind(), FuKind::Mem);
        assert_eq!(Opcode::Stb.fu_kind(), FuKind::Mem);
        assert_eq!(Opcode::Br.fu_kind(), FuKind::Br);
        assert_eq!(Opcode::Halt.fu_kind(), FuKind::Br);
        assert_eq!(Opcode::Send.fu_kind(), FuKind::Send);
        assert_eq!(Opcode::Recv.fu_kind(), FuKind::Recv);
    }

    #[test]
    fn latencies_follow_paper_model() {
        let lat = Latencies::default();
        assert_eq!(Opcode::Add.latency(&lat), 1);
        assert_eq!(Opcode::Mull.latency(&lat), 2);
        assert_eq!(Opcode::Ldw.latency(&lat), 2);
        assert_eq!(Opcode::Stw.latency(&lat), 2);
        assert_eq!(Opcode::CmpLt.latency(&lat), 1);
    }

    #[test]
    fn predicates() {
        assert!(Opcode::Ldbu.is_load());
        assert!(!Opcode::Ldbu.is_store());
        assert!(Opcode::Sth.is_store());
        assert!(Opcode::Send.is_comm());
        assert!(Opcode::Recv.is_comm());
        assert!(Opcode::Goto.is_ctrl());
        assert!(Opcode::CmpGeu.is_cmp());
        assert!(!Opcode::Slct.is_cmp());
    }

    #[test]
    fn display_forms() {
        let add = Operation::bin(
            Opcode::Add,
            Reg::new(0, 3),
            Operand::Gpr(Reg::new(0, 1)),
            Operand::Imm(4),
        );
        assert_eq!(add.to_string(), "add $r0.3 = $r0.1, 4");

        let ld = Operation::load(Opcode::Ldw, Reg::new(1, 5), Reg::new(1, 2), 8);
        assert_eq!(ld.to_string(), "ldw $r1.5 = 8[$r1.2]");

        let st = Operation::store(
            Opcode::Stw,
            Reg::new(0, 2),
            12,
            Operand::Gpr(Reg::new(0, 7)),
        );
        assert_eq!(st.to_string(), "stw 12[$r0.2] = $r0.7");

        let mut br = Operation::new(Opcode::Br);
        br.a = Operand::Breg(BReg::new(0, 1));
        br.imm = 42;
        assert_eq!(br.to_string(), "br $b0.1, L42");
    }

    #[test]
    fn src_gpr_iteration() {
        let op = Operation {
            opcode: Opcode::Slct,
            dst: Dest::Gpr(Reg::new(0, 1)),
            a: Operand::Gpr(Reg::new(0, 2)),
            b: Operand::Imm(9),
            c: Operand::Breg(BReg::new(0, 0)),
            imm: 0,
        };
        let srcs: Vec<Reg> = op.src_gprs().collect();
        assert_eq!(srcs, vec![Reg::new(0, 2)]);
    }
}
