//! The paper's motivating scenario (§VI-A): "playing a dvd requires
//! multiple threads for decryption (low ILP), video decoding (high ILP),
//! audio decoding (medium ILP) etc. along with the operating system
//! threads (low ILP)".
//!
//! This example runs exactly that mix — blowfish (decryption), idct (video
//! decode), g721decode (audio decode), bzip2 (OS-ish background work) — on
//! a 4-thread machine under every technique of Figure 4 and prints the
//! resulting IPC and waste decomposition.
//!
//! ```text
//! cargo run --release --example dvd_playback
//! ```

use clustered_vliw_smt::isa::MachineConfig;
use clustered_vliw_smt::sim::{MemoryMode, SimConfig, Technique};
use clustered_vliw_smt::workloads::compile_benchmark;

fn main() {
    let programs = vec![
        compile_benchmark("blowfish"),
        compile_benchmark("idct"),
        compile_benchmark("g721decode"),
        compile_benchmark("bzip2"),
    ];
    println!("DVD-playback mix: blowfish + idct + g721decode + bzip2\n");
    println!(
        "{:10} {:>10} {:>8} {:>10} {:>12} {:>12}",
        "technique", "cycles", "IPC", "merged%", "vert.waste%", "horiz.waste%"
    );

    let machine = MachineConfig::paper_4c4w();
    for (label, tech) in Technique::FIGURE16_SET {
        let cfg = SimConfig {
            caches: vex_mem::MemConfig::paper(),
            machine: machine.clone(),
            technique: tech,
            n_threads: 4,
            renaming: true,
            memory: MemoryMode::Real,
            timeslice: 25_000,
            inst_limit: 100_000,
            max_cycles: 500_000_000,
            seed: 0xD1D,
            mt_mode: clustered_vliw_smt::sim::MtMode::Simultaneous,
            respawn: true,
        };
        let stats = clustered_vliw_smt::sim::run_workload(&cfg, &programs);
        println!(
            "{label:10} {:>10} {:>8.2} {:>9.1}% {:>11.1}% {:>11.1}%",
            stats.cycles,
            stats.ipc(),
            100.0 * stats.merged_cycles as f64 / stats.cycles as f64,
            100.0 * stats.vertical_waste(),
            100.0 * stats.horizontal_waste(machine.total_issue_width()),
        );
    }
    println!(
        "\nReading the table: split-issue (CCSI/COSI/OOSI) trims horizontal \
         waste relative to its merge-level baseline (CSMT/SMT), and the AS \
         configurations beat NS because instructions with send/recv pairs \
         may split too (paper §VI-B)."
    );
}
