//! Design-space exploration: what does cluster-level split-issue buy on
//! machines the paper did *not* evaluate? This example sweeps cluster
//! count and per-cluster width, running the `llhh` mix under CSMT and
//! CCSI-AS on each machine.
//!
//! Note the workloads are compiled per machine — the in-repo compiler
//! retargets the kernels automatically (cluster pins are taken modulo the
//! cluster count by the assigner only when valid, so this sweep sticks to
//! machines with ≥ 4 clusters or uses unpinned placement gracefully).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use clustered_vliw_smt::isa::MachineConfig;
use clustered_vliw_smt::sim::{CommPolicy, MemoryMode, SimConfig, Technique};
use clustered_vliw_smt::workloads::{compile_benchmark, MIXES};

fn main() {
    println!("Design-space sweep on the `llhh` mix (4 threads):\n");
    println!(
        "{:>9} {:>7} {:>11} {:>11} {:>9}",
        "clusters", "width", "CSMT IPC", "CCSI-AS IPC", "gain"
    );

    // The shipped kernels pin values to clusters 0..3, so the sweep covers
    // machines with at least four clusters.
    for (n_clusters, width) in [(4u8, 2u8), (4, 4), (4, 6), (8, 4)] {
        let machine = MachineConfig {
            n_clusters,
            cluster: clustered_vliw_smt::isa::ClusterResources::narrow(width),
            ..MachineConfig::paper_4c4w()
        };
        // Recompile the mix for this machine.
        let mix = &MIXES[5]; // llhh
        let programs: Vec<_> = mix
            .members
            .iter()
            .map(|name| {
                let b = clustered_vliw_smt::workloads::by_name(name).unwrap();
                let kernel = (b.build)();
                std::sync::Arc::new(
                    clustered_vliw_smt::compiler::compile(&kernel, &machine)
                        .unwrap_or_else(|e| panic!("{name} on {n_clusters}x{width}: {e}")),
                )
            })
            .collect();
        let _ = compile_benchmark; // (paper-machine convenience not used here)

        let mut ipcs = Vec::new();
        for tech in [Technique::csmt(), Technique::ccsi(CommPolicy::AlwaysSplit)] {
            let cfg = SimConfig {
                caches: vex_mem::MemConfig::paper(),
                machine: machine.clone(),
                technique: tech,
                n_threads: 4,
                renaming: true,
                memory: MemoryMode::Real,
                timeslice: 25_000,
                inst_limit: 60_000,
                max_cycles: 500_000_000,
                seed: 0xDE51,
                mt_mode: clustered_vliw_smt::sim::MtMode::Simultaneous,
                respawn: true,
            };
            ipcs.push(clustered_vliw_smt::sim::run_workload(&cfg, &programs).ipc());
        }
        println!(
            "{:>9} {:>7} {:>11.2} {:>11.2} {:>8.1}%",
            n_clusters,
            width,
            ipcs[0],
            ipcs[1],
            (ipcs[1] / ipcs[0] - 1.0) * 100.0
        );
    }
    println!(
        "\nNarrower clusters make whole-instruction merging harder, so\n\
         split-issue recovers more; wider clusters leave slack inside each\n\
         cluster and the gap closes — the cost/benefit story of §VII."
    );
}
