//! Tour of the `vex-asm` subsystem from the library side: parse a
//! `.vex` source, disassemble it back, cache it as a `.vexb` blob, and
//! run it under two techniques to show identical architectural results
//! with different timing.
//!
//! Run with: `cargo run --release --example asm_roundtrip`

use clustered_vliw_smt::asm::{decode, encode, parse_program, print_program};
use clustered_vliw_smt::sim::{run_single, CommPolicy, Technique};
use std::sync::Arc;

const SOURCE: &str = include_str!("foo.vex");

fn main() {
    // 1. Assemble.
    let program = match parse_program(SOURCE) {
        Ok(p) => p,
        Err(e) => {
            // Parse errors carry spans and render compiler-style carets.
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed `{}`: {} instructions, {} operations",
        program.name,
        program.len(),
        program.total_ops()
    );

    // 2. Disassemble: the canonical text parses back to the same value.
    let text = print_program(&program);
    assert_eq!(parse_program(&text).unwrap(), program);
    println!(
        "text round-trip ok ({} bytes of canonical assembly)",
        text.len()
    );

    // 3. Binary cache: compact, versioned, byte-exact.
    let blob = encode(&program);
    assert_eq!(decode(&blob).unwrap(), program);
    println!("binary round-trip ok ({} bytes of .vexb)", blob.len());

    // 4. Run under a no-split baseline and the paper's CCSI proposal.
    let program = Arc::new(program);
    for tech in [Technique::csmt(), Technique::ccsi(CommPolicy::AlwaysSplit)] {
        let (engine, stats) = run_single(&program, tech, 4);
        let sum = engine.contexts[0].mem.read_u32(0x100);
        let doubled = engine.contexts[0].mem.read_u32(0x104);
        println!(
            "{:<8} 4 threads: {} cycles, IPC {:.2}, [0x100]={sum} [0x104]={doubled}",
            tech.label(),
            stats.cycles,
            stats.ipc()
        );
        assert_eq!((sum, doubled), (45, 90));
    }
    println!("same results, different cycle counts — split-issue only moves time");
}
