//! Quickstart: write a kernel, compile it for the paper's 4-cluster VLIW,
//! run it on the simulator, and inspect both results and timing.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clustered_vliw_smt::compiler::compile;
use clustered_vliw_smt::compiler::ir::{CmpKind, KernelBuilder, MemWidth, Val};
use clustered_vliw_smt::isa::MachineConfig;
use clustered_vliw_smt::sim::{run_single, Technique};
use std::sync::Arc;

fn main() {
    // A small kernel: dot product of two 64-element vectors, with the
    // accumulator pinned to cluster 1 so some data crosses the network.
    let mut k = KernelBuilder::new("dotprod");
    let body = k.new_block();
    let exit = k.new_block();

    let i = k.vreg_on(0);
    let a = k.vreg_on(0);
    let b = k.vreg_on(0);
    let prod = k.vreg_on(0);
    let acc = k.vreg_on(1);
    let addr = k.vreg_on(0);

    // Input vectors at 0x1000 and 0x2000: v0[i] = i, v1[i] = 2i.
    let v0: Vec<u8> = (0..64u32).flat_map(u32::to_le_bytes).collect();
    let v1: Vec<u8> = (0..64u32).flat_map(|x| (2 * x).to_le_bytes()).collect();
    k.data(0x1000, v0);
    k.data(0x2000, v1);

    k.movi(i, 0);
    k.movi(acc, 0);
    k.jump(body);

    k.switch_to(body);
    k.shl(addr, i, 2);
    k.load(MemWidth::W, a, addr, 0x1000, 1);
    k.load(MemWidth::W, b, addr, 0x2000, 2);
    k.mul(prod, a, b);
    k.add(acc, acc, prod); // prod travels cluster 0 -> 1
    k.add(i, i, 1);
    k.cond_br(CmpKind::Lt, i, 64, body, exit);

    k.switch_to(exit);
    k.store(MemWidth::W, acc, Val::Imm(0x3000), 0, 3);
    k.halt();

    let machine = MachineConfig::paper_4c4w();
    let program = Arc::new(compile(&k.finish(), &machine).expect("compiles"));
    println!(
        "compiled `{}`: {} VLIW instructions, static density {:.2} ops/inst\n",
        program.name,
        program.len(),
        program.static_density()
    );

    // Run one copy, then four copies simultaneously under CCSI.
    for (label, tech, n) in [
        ("single thread", Technique::csmt(), 1u8),
        ("4 threads, CSMT", Technique::csmt(), 4),
        (
            "4 threads, CCSI AS (the paper's proposal)",
            Technique::ccsi(clustered_vliw_smt::sim::CommPolicy::AlwaysSplit),
            4,
        ),
    ] {
        let (engine, stats) = run_single(&program, tech, n);
        let expect: u32 = (0..64).map(|x| x * 2 * x).sum();
        for ctx in &engine.contexts {
            assert_eq!(ctx.mem.read_u32(0x3000), expect, "wrong dot product");
        }
        println!(
            "{label:44} cycles={:6}  IPC={:.2}  (dot product = {expect})",
            stats.cycles,
            stats.ipc()
        );
    }
}
