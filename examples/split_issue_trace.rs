//! Cycle-by-cycle trace of the paper's Figure 6 example: two threads on a
//! 2-cluster machine where cluster-level split-issue (CCSI) turns a
//! 4-cycle CSMT schedule into 3 cycles.
//!
//! ```text
//! cargo run --release --example split_issue_trace
//! ```

use clustered_vliw_smt::isa::{
    Instruction, MachineConfig, Opcode, Operand, Operation, Program, Reg,
};
use clustered_vliw_smt::sim::{CommPolicy, Engine, MemoryMode, SimConfig, Technique};
use clustered_vliw_smt::trace::{RingSink, TraceEvent};
use std::sync::Arc;

fn alu(c: u8, i: u8) -> Operation {
    Operation::bin(
        Opcode::Add,
        Reg::new(c, i),
        Operand::Gpr(Reg::new(c, i)),
        Operand::Imm(1),
    )
}

fn program(name: &str, ins: Vec<Instruction>) -> Arc<Program> {
    let mut insts = ins;
    let mut halt = Instruction::nop(2);
    halt.bundles[0].ops.push(Operation::new(Opcode::Halt));
    insts.push(halt);
    Arc::new(Program::new(name, insts, vec![]))
}

fn run(tech: Technique, t0: &Arc<Program>, t1: &Arc<Program>) {
    let cfg = SimConfig {
        caches: vex_mem::MemConfig::paper(),
        machine: MachineConfig::small(2, 3),
        technique: tech,
        n_threads: 2,
        renaming: false,
        memory: MemoryMode::Perfect,
        timeslice: u64::MAX,
        inst_limit: u64::MAX,
        max_cycles: 100,
        seed: 1,
        mt_mode: clustered_vliw_smt::sim::MtMode::Simultaneous,
        respawn: false,
    };
    let mut e = Engine::new(cfg, &[Arc::clone(t0), Arc::clone(t1)]);
    e.set_tracer(Box::new(RingSink::unbounded()));
    e.run();
    let ring = RingSink::reclaim(e.take_tracer().unwrap()).unwrap();
    println!("--- {} ---", tech.label());
    for ev in ring.events() {
        let TraceEvent::Issue {
            cycle,
            thread,
            inst,
            ops,
            completed,
            ..
        } = *ev
        else {
            continue;
        };
        if inst > 1 {
            continue; // skip the halt instructions
        }
        println!(
            "cycle {cycle}: thread {thread} issued {ops} op(s) of Ins{inst}{}",
            if completed {
                "  [last part -> commits]"
            } else {
                "  [split]"
            }
        );
    }
    println!();
}

fn main() {
    // Thread 0: Ins0 uses only cluster 0; Ins1 uses both clusters.
    let t0 = program(
        "T0",
        vec![
            Instruction::from_ops(2, [(0, alu(0, 1)), (0, alu(0, 2))]),
            Instruction::from_ops(
                2,
                [
                    (0, alu(0, 3)),
                    (0, alu(0, 4)),
                    (1, alu(1, 1)),
                    (1, alu(1, 2)),
                ],
            ),
        ],
    );
    // Thread 1: Ins0 uses both clusters; Ins1 uses cluster 1.
    let t1 = program(
        "T1",
        vec![
            Instruction::from_ops(2, [(0, alu(0, 5)), (0, alu(0, 6)), (1, alu(1, 3))]),
            Instruction::from_ops(2, [(1, alu(1, 4)), (1, alu(1, 5))]),
        ],
    );

    println!(
        "Figure 6 scenario: T0.Ins0 uses cluster 0 only; T1.Ins0 needs both\n\
         clusters. Under CSMT nothing merges (4 cycles); under CCSI the\n\
         bundles dribble into free clusters (3 cycles).\n"
    );
    run(Technique::csmt(), &t0, &t1);
    run(Technique::ccsi(CommPolicy::AlwaysSplit), &t0, &t1);
}
