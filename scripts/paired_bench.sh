#!/usr/bin/env bash
# Paired same-host A/B throughput comparison.
#
# Single-host wall-clock drifts by ±10% minute to minute on shared
# machines, so comparing a benchmark number recorded yesterday against
# one recorded today mostly measures the host, not the code. This
# script interleaves runs of a BASELINE bench binary and a CURRENT
# bench binary — base, new, base, new, ... within the same minutes on
# the same host — and reports the per-round and pooled aggregate
# ratios, which is the honest speedup estimate.
#
# Usage:
#   scripts/paired_bench.sh <baseline-binary> [current-binary] [rounds]
#
#   baseline-binary  a sim_throughput bench binary from the baseline
#                    commit (build one with:
#                      git checkout <base> && cargo bench -p vex-bench --no-run
#                    then copy target/release/deps/sim_throughput-* aside)
#   current-binary   defaults to the newest
#                    target/release/deps/sim_throughput-* (run
#                    `cargo bench -p vex-bench --no-run` first)
#   rounds           interleaved rounds, default 3
#
# Each binary writes its JSON artifact to a temp path via
# BENCH_SIM_THROUGHPUT_OUT, so the checked-in BENCH_sim_throughput.json
# is never touched.
set -euo pipefail

BASE_BIN=${1:?usage: paired_bench.sh <baseline-binary> [current-binary] [rounds]}
CUR_BIN=${2:-}
ROUNDS=${3:-3}

repo_root=$(cd "$(dirname "$0")/.." && pwd)

if [[ -z "$CUR_BIN" ]]; then
    CUR_BIN=$(ls -t "$repo_root"/target/release/deps/sim_throughput-* 2>/dev/null \
        | grep -v '\.d$' | head -1 || true)
    [[ -n "$CUR_BIN" ]] || {
        echo "error: no current bench binary found; run 'cargo bench -p vex-bench --no-run' first" >&2
        exit 1
    }
fi

for bin in "$BASE_BIN" "$CUR_BIN"; do
    [[ -x "$bin" ]] || { echo "error: $bin is not executable" >&2; exit 1; }
done

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "baseline: $BASE_BIN"
echo "current:  $CUR_BIN"
echo "rounds:   $ROUNDS (interleaved base/current per round)"
echo

for ((r = 1; r <= ROUNDS; r++)); do
    BENCH_SIM_THROUGHPUT_OUT="$workdir/base_$r.json" "$BASE_BIN" --bench >/dev/null
    BENCH_SIM_THROUGHPUT_OUT="$workdir/cur_$r.json" "$CUR_BIN" --bench >/dev/null
    python3 - "$workdir" "$r" <<'EOF'
import json, sys
d, r = sys.argv[1], sys.argv[2]
b = json.load(open(f"{d}/base_{r}.json"))["aggregate_cycles_per_sec"]
c = json.load(open(f"{d}/cur_{r}.json"))["aggregate_cycles_per_sec"]
print(f"round {r}: baseline {b/1e6:7.3f} M cyc/s   current {c/1e6:7.3f} M cyc/s   ratio {c/b:.3f}x")
EOF
done

python3 - "$workdir" "$ROUNDS" <<'EOF'
import json, sys
d, n = sys.argv[1], int(sys.argv[2])
base = [json.load(open(f"{d}/base_{r}.json"))["aggregate_cycles_per_sec"] for r in range(1, n + 1)]
cur = [json.load(open(f"{d}/cur_{r}.json"))["aggregate_cycles_per_sec"] for r in range(1, n + 1)]
ratios = [c / b for b, c in zip(base, cur)]
pooled = sum(cur) / sum(base)
print()
print(f"pooled ratio (sum current / sum baseline): {pooled:.3f}x")
print(f"per-round ratios: min {min(ratios):.3f}x  max {max(ratios):.3f}x")
EOF
